package serve

// GET /v1/report: the full paper evaluation — Tables 6-1 through 6-3 and
// Figures 6-2 through 6-4 — as one text document, byte-identical to spdbench
// stdout for the same configuration. The CI serve-smoke job byte-diffs the
// two; determinism across tiers, caches and recovered faults is the repo's
// core invariant and this endpoint is where a service client observes it.
//
// A report is one admission slot like any eval (it is the most expensive
// request the daemon serves), runs on the request context — a disconnected
// client cancels the sweep and the scheduler skips its queued cells — and
// is rendered into a buffer first so a mid-sweep failure is a typed error,
// never a truncated 200.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"

	"specdis/internal/bench"
	"specdis/internal/exper"
	"specdis/internal/sim"
)

// handleReport serves GET /v1/report. Query parameters:
//
//   - bench: restrict to one suite benchmark (default: the full suite);
//   - only: emit a single section (table61, table62, table63, fig62, fig63,
//     fig64; default: all six in spdbench order);
//   - exec: execution tier (native, bcode, tree; default: the server's).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	done, ok := s.begin(w)
	if !ok {
		return
	}
	defer done()
	s.met.reports.Add(1)

	q := r.URL.Query()
	benches := bench.All()
	if name := q.Get("bench"); name != "" {
		b := bench.ByName(name)
		if b == nil {
			writeError(w, badRequest(fmt.Sprintf("unknown benchmark %q", name)))
			return
		}
		benches = []*bench.Benchmark{b}
	}
	only := q.Get("only")
	switch only {
	case "", "table61", "table62", "table63", "fig62", "fig63", "fig64":
	default:
		writeError(w, badRequest(fmt.Sprintf("unknown section %q (want table61, table62, table63, fig62, fig63 or fig64)", only)))
		return
	}
	exec := s.exec
	switch q.Get("exec") {
	case "":
	case "native":
		exec = sim.ExecNative
	case "bcode":
		exec = sim.ExecBytecode
	case "tree":
		exec = sim.ExecTree
	default:
		writeError(w, badRequest(fmt.Sprintf("unknown exec tier %q (want native, bcode or tree)", q.Get("exec"))))
		return
	}

	// The report shares the eval path's budgets: the server's fuel cap and
	// deadline cap bound the sweep, and the client's disconnect cancels it.
	if apiErr := s.adm.acquire(r.Context()); apiErr != nil {
		if apiErr.Status == http.StatusTooManyRequests {
			s.met.admissionRejections.Add(1)
		}
		writeError(w, apiErr)
		return
	}
	defer s.adm.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DeadlineCap)
	defer cancel()
	eng := s.runner(ctx, exec, s.cfg.FuelCap, benches...)

	var buf bytes.Buffer
	want := func(name string) bool { return only == "" || only == name }
	render := func(name string, fn func() error) error {
		if !want(name) {
			return nil
		}
		if err := fn(); err != nil {
			return err
		}
		fmt.Fprintln(&buf)
		return nil
	}
	err := func() error {
		if err := render("table61", func() error { exper.RenderTable61(&buf); return nil }); err != nil {
			return err
		}
		if err := render("table62", func() error { exper.RenderTable62(&buf, eng.Benchmarks); return nil }); err != nil {
			return err
		}
		if err := render("table63", func() error { return eng.StreamTable63(&buf) }); err != nil {
			return err
		}
		if err := render("fig62", func() error { return eng.StreamFigure62(&buf) }); err != nil {
			return err
		}
		if err := render("fig63", func() error { return eng.StreamFigure63(&buf) }); err != nil {
			return err
		}
		return render("fig64", func() error { return eng.StreamFigure64(&buf) })
	}()
	s.met.absorb(eng.Stats())
	if err != nil {
		s.met.evalErrors.Add(1)
		writeError(w, errorFor(err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
