package serve

// POST /v1/eval: evaluate one cell — a MiniC source (or named suite
// benchmark) under one disambiguation pipeline at one memory latency —
// returning its cycle prices, SpD counts and optional verifier findings.
//
// The response splits deterministic from run-dependent content: "result" is
// byte-identical to a batch (spdbench) evaluation of the same cell no matter
// the execution tier, cache warmth, concurrency, or recovered faults —
// that's the chaos soak's oracle — while "stats" carries the per-request
// budget/degradation counters that legitimately vary run to run.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/resilience"
	"specdis/internal/sim"
)

// EvalRequest is the /v1/eval body. Exactly one of Source and Bench selects
// the program.
type EvalRequest struct {
	// Source is MiniC program text; Bench names a suite benchmark.
	Source string `json:"source,omitempty"`
	Bench  string `json:"bench,omitempty"`
	// Pipeline is the disambiguation pipeline: NAIVE, STATIC, SPEC or
	// PERFECT (case-insensitive).
	Pipeline string `json:"pipeline"`
	// MemLat is the memory latency model: 2 or 6 (Table 6-1).
	MemLat int `json:"mem_lat"`
	// Exec selects the execution tier: native, bcode or tree ("" = the
	// server default). The result is byte-identical across tiers; the tier
	// only changes how fast it is produced.
	Exec string `json:"exec,omitempty"`
	// Fuel is the dynamic-operation budget (0 = server cap; capped at it).
	Fuel int64 `json:"fuel,omitempty"`
	// DeadlineMS is the wall-clock budget in milliseconds (0 = server cap;
	// capped at it). It propagates by context through admission queueing and
	// into every interpretation.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Lint additionally runs the full verifier battery (disamb.Lint) over
	// the program, reporting findings in the result.
	Lint bool `json:"lint,omitempty"`
}

// SpDCounts are the SpD application counts by dependence type.
type SpDCounts struct {
	RAW int `json:"raw"`
	WAR int `json:"war"`
	WAW int `json:"waw"`
}

// Finding is one verifier finding (Lint requests only).
type Finding struct {
	Check string `json:"check"`
	Func  string `json:"func,omitempty"`
	Tree  string `json:"tree,omitempty"`
	Msg   string `json:"msg"`
}

// EvalResult is the deterministic half of the response.
type EvalResult struct {
	Bench    string `json:"bench"`
	Pipeline string `json:"pipeline"`
	MemLat   int    `json:"mem_lat"`
	// CyclesInf is the cycle count under the infinite machine;
	// CyclesByWidth[w-1] under w functional units.
	CyclesInf     int64   `json:"cycles_inf"`
	CyclesByWidth []int64 `json:"cycles_by_width"`
	// Ops counts dynamic operations the timed simulation executed.
	Ops int64 `json:"ops"`
	// SpD are the speculative-disambiguation application counts; BaseOps and
	// AfterOps the code size before and after the transform; Grafts the
	// applied tree grafts.
	SpD      SpDCounts `json:"spd"`
	BaseOps  int       `json:"base_ops"`
	AfterOps int       `json:"after_ops"`
	Grafts   int       `json:"grafts"`
	// Findings are the verifier battery's findings (Lint requests only;
	// omitted otherwise, empty-but-present when lint ran clean).
	Findings []Finding `json:"findings,omitempty"`
	// LintClean reports a clean battery (Lint requests only).
	LintClean *bool `json:"lint_clean,omitempty"`
}

// EvalStats is the run-dependent half: what this request actually cost and
// which degradation rungs it took. Deduplicated followers carry the leader's
// engine stats with Deduped set.
type EvalStats struct {
	ElapsedMS float64 `json:"elapsed_ms"`
	Exec      string  `json:"exec"`
	Fuel      int64   `json:"fuel"`
	Deduped   bool    `json:"deduped,omitempty"`

	NCodeFallbacks   int64 `json:"ncode_fallbacks"`
	BCodeFallbacks   int64 `json:"bcode_fallbacks"`
	TraceRecaptures  int64 `json:"trace_recaptures"`
	InterpFallbacks  int64 `json:"interp_fallbacks"`
	CellFailures     int64 `json:"cell_failures"`
	CellPanics       int64 `json:"cell_panics"`
	FuelExhausted    int64 `json:"fuel_exhausted"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	FaultsInjected   int64 `json:"faults_injected"`
	TierUps          int64 `json:"tier_ups"`
}

// evalPlan is a validated request: everything an evaluation needs.
type evalPlan struct {
	bench    *bench.Benchmark
	kind     disamb.Kind
	memLat   int
	exec     sim.ExecMode
	execName string
	fuel     int64
	deadline time.Duration
	lint     bool
}

// key returns the single-flight identity: two requests with equal keys
// compute the identical deterministic result. The deadline is excluded — it
// bounds the computation, it doesn't change it.
func (p *evalPlan) key() string {
	h := sha256.Sum256([]byte(p.bench.Source))
	return fmt.Sprintf("%s|%s|%d|%s|%d|%t",
		hex.EncodeToString(h[:8]), p.kind, p.memLat, p.execName, p.fuel, p.lint)
}

// plan validates the request against the server's limits.
func (s *Server) plan(req *EvalRequest) (*evalPlan, *apiError) {
	p := &evalPlan{memLat: req.MemLat, lint: req.Lint}
	switch {
	case req.Source == "" && req.Bench == "":
		return nil, badRequest("one of source or bench is required")
	case req.Source != "" && req.Bench != "":
		return nil, badRequest("source and bench are mutually exclusive")
	case req.Source != "":
		if len(req.Source) > s.cfg.MaxSourceBytes {
			return nil, &apiError{
				Status: http.StatusRequestEntityTooLarge, Class: "too-large",
				Msg: fmt.Sprintf("source is %d bytes; the limit is %d", len(req.Source), s.cfg.MaxSourceBytes),
			}
		}
		// A synthetic per-request benchmark: the name is content-derived so
		// cell names — what fault plans and failure reports key on — are
		// stable for identical sources.
		sum := sha256.Sum256([]byte(req.Source))
		p.bench = &bench.Benchmark{
			Name:   "src-" + hex.EncodeToString(sum[:4]),
			Suite:  "adhoc",
			Source: req.Source,
		}
	default:
		p.bench = bench.ByName(req.Bench)
		if p.bench == nil {
			return nil, badRequest(fmt.Sprintf("unknown benchmark %q", req.Bench))
		}
	}
	switch strings.ToUpper(req.Pipeline) {
	case "NAIVE":
		p.kind = disamb.Naive
	case "STATIC":
		p.kind = disamb.Static
	case "SPEC":
		p.kind = disamb.Spec
	case "PERFECT":
		p.kind = disamb.Perfect
	default:
		return nil, badRequest(fmt.Sprintf("unknown pipeline %q (want NAIVE, STATIC, SPEC or PERFECT)", req.Pipeline))
	}
	ok := false
	for _, l := range exper.MemLats {
		ok = ok || l == req.MemLat
	}
	if !ok {
		return nil, badRequest(fmt.Sprintf("unsupported mem_lat %d (want 2 or 6)", req.MemLat))
	}
	switch req.Exec {
	case "":
		p.exec = s.exec
	case "native":
		p.exec = sim.ExecNative
	case "bcode":
		p.exec = sim.ExecBytecode
	case "tree":
		p.exec = sim.ExecTree
	default:
		return nil, badRequest(fmt.Sprintf("unknown exec tier %q (want native, bcode or tree)", req.Exec))
	}
	p.execName = execName(p.exec)
	if req.Fuel < 0 {
		return nil, badRequest("fuel must be non-negative")
	}
	p.fuel = s.cfg.FuelCap
	if req.Fuel > 0 && req.Fuel < p.fuel {
		p.fuel = req.Fuel
	}
	if req.DeadlineMS < 0 {
		return nil, badRequest("deadline_ms must be non-negative")
	}
	p.deadline = s.cfg.DeadlineCap
	if d := time.Duration(req.DeadlineMS) * time.Millisecond; d > 0 && d < p.deadline {
		p.deadline = d
	}
	return p, nil
}

func execName(m sim.ExecMode) string {
	switch m {
	case sim.ExecNative:
		return "native"
	case sim.ExecTree:
		return "tree"
	}
	return "bcode"
}

// flight is one in-flight deduplicated computation: a leader computes,
// followers wait on done and share the deterministic result. waiters is
// refcounted so a computation every client abandoned is cancelled instead
// of burning a slot for nobody.
type flight struct {
	done    chan struct{}
	result  json.RawMessage // deterministic EvalResult bytes
	stats   EvalStats       // the leader's engine stats
	err     *apiError
	cancel  context.CancelFunc
	waiters int
}

type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key, creating it (leader = true) on first
// call. Every caller must later leave it.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		f.waiters++
		return f, false
	}
	f := &flight{done: make(chan struct{}), waiters: 1}
	g.m[key] = f
	return f, true
}

// leave drops one waiter; when the last waiter abandons a still-running
// flight, its computation context is cancelled (the engines fail the
// remaining cells typed and the scheduler skips what never started) and the
// flight is unregistered, so a later identical request leads a fresh
// computation instead of inheriting the dying one's cancellation error.
func (g *flightGroup) leave(key string, f *flight) {
	g.mu.Lock()
	f.waiters--
	abandoned := f.waiters == 0 && !f.finished()
	if abandoned && g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	if abandoned && f.cancel != nil {
		f.cancel()
	}
}

// finish publishes the outcome and removes the flight from the group. The
// identity check keeps an abandoned flight's late finish from unregistering
// a successor that reused its key.
func (g *flightGroup) finish(key string, f *flight) {
	g.mu.Lock()
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
	close(f.done)
}

func (f *flight) finished() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// handleEval serves POST /v1/eval.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	done, ok := s.begin(w)
	if !ok {
		return
	}
	defer done()
	s.met.evals.Add(1)

	var req EvalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)+4096)).Decode(&req); err != nil {
		s.met.evalErrors.Add(1)
		writeError(w, badRequest("bad request body: "+err.Error()))
		return
	}
	p, apiErr := s.plan(&req)
	if apiErr != nil {
		s.met.evalErrors.Add(1)
		writeError(w, apiErr)
		return
	}

	// Propagate the request's deadline budget into everything that follows:
	// admission queueing, the engine's interpretations, and the scheduler.
	ctx, cancel := context.WithTimeout(r.Context(), p.deadline)
	defer cancel()

	key := p.key()
	f, leader := s.flights.join(key)
	defer s.flights.leave(key, f)
	if !leader {
		// Identical request already in flight: wait for its result instead
		// of computing it twice.
		s.met.dedupHits.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			s.met.evalErrors.Add(1)
			writeError(w, &apiError{
				Status: http.StatusGatewayTimeout, Class: "deadline",
				Msg: "request deadline expired waiting for an identical in-flight evaluation",
			})
			return
		}
		if f.err != nil {
			s.met.evalErrors.Add(1)
			writeError(w, f.err)
			return
		}
		st := f.stats
		st.Deduped = true
		writeEvalResponse(w, f.result, &st)
		return
	}

	// Leader: take an evaluation slot (bounded admission) and compute on a
	// context detached from this client — followers that joined the flight
	// may outlive the leader's connection; the waiter refcount cancels the
	// computation when the last one leaves.
	if apiErr := s.adm.acquire(ctx); apiErr != nil {
		if apiErr.Status == http.StatusTooManyRequests {
			s.met.admissionRejections.Add(1)
		}
		s.met.evalErrors.Add(1)
		f.err = apiErr
		s.flights.finish(key, f)
		writeError(w, apiErr)
		return
	}
	defer s.adm.release()

	cctx, ccancel := context.WithTimeout(context.Background(), p.deadline)
	defer ccancel()
	f.cancel = ccancel

	start := time.Now()
	result, stats, err := s.evaluate(cctx, p)
	elapsed := time.Since(start)
	s.met.absorb(stats)
	if err != nil {
		s.met.evalErrors.Add(1)
		f.err = errorFor(err)
		s.flights.finish(key, f)
		writeError(w, f.err)
		return
	}
	raw, merr := json.Marshal(result)
	if merr != nil {
		s.met.evalErrors.Add(1)
		f.err = &apiError{Status: http.StatusInternalServerError, Class: "internal", Msg: merr.Error()}
		s.flights.finish(key, f)
		writeError(w, f.err)
		return
	}
	f.result = raw
	f.stats = evalStats(p, stats, elapsed)
	s.flights.finish(key, f)
	writeEvalResponse(w, f.result, &f.stats)
}

// evalStats projects a request's engine counters into the response shape.
func evalStats(p *evalPlan, st exper.Stats, elapsed time.Duration) EvalStats {
	return EvalStats{
		ElapsedMS:        float64(elapsed.Microseconds()) / 1000,
		Exec:             p.execName,
		Fuel:             p.fuel,
		NCodeFallbacks:   st.NCodeFallbacks,
		BCodeFallbacks:   st.BCodeFallbacks,
		TraceRecaptures:  st.TraceRecaptures,
		InterpFallbacks:  st.InterpFallbacks,
		CellFailures:     st.CellFailures,
		CellPanics:       st.CellPanics,
		FuelExhausted:    st.FuelExhausted,
		DeadlineExceeded: st.DeadlineExceeded,
		FaultsInjected:   st.FaultsInjected,
		TierUps:          st.TierUps,
	}
}

func writeEvalResponse(w http.ResponseWriter, result json.RawMessage, stats *EvalStats) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Result json.RawMessage `json:"result"`
		Stats  *EvalStats      `json:"stats"`
	}{result, stats})
}

// evaluate runs one cell on a private, budgeted engine wired to the shared
// service state. Panics anywhere inside the engines are recovered at the
// cell boundaries (resilience.Recover) and walk the degradation ladder; the
// outer recover is the last-resort boundary that keeps a bug in the
// assembly code here from killing the daemon.
func (s *Server) evaluate(ctx context.Context, p *evalPlan) (result *EvalResult, stats exper.Stats, err error) {
	r := s.runner(ctx, p.exec, p.fuel, p.bench)
	defer func() {
		stats = r.Stats()
		resilience.Recover(&err, p.bench.Name, p.kind.String(), p.memLat, "serve")
	}()

	m, err := r.Measure(p.bench, p.kind, p.memLat)
	if err != nil {
		return nil, stats, err
	}
	sum, err := r.Summary(p.bench, p.kind, p.memLat)
	if err != nil {
		return nil, stats, err
	}
	result = &EvalResult{
		Bench:         p.bench.Name,
		Pipeline:      p.kind.String(),
		MemLat:        p.memLat,
		CyclesInf:     m.Inf,
		CyclesByWidth: append([]int64(nil), m.ByWidth[:]...),
		Ops:           m.Ops,
		SpD:           SpDCounts{RAW: sum.RAW, WAR: sum.WAR, WAW: sum.WAW},
		BaseOps:       sum.BaseOps,
		AfterOps:      sum.AfterOps,
		Grafts:        sum.Grafts,
	}
	if p.lint {
		rep, lerr := disamb.Lint(p.bench.Source, disamb.LintOptions{
			Exec:   p.exec,
			MaxOps: p.fuel,
			BCode:  s.bc,
			NCode:  s.nc,
		})
		if lerr != nil {
			return nil, stats, lerr
		}
		clean := rep.Clean()
		result.LintClean = &clean
		result.Findings = make([]Finding, 0, len(rep.Findings))
		for _, fd := range rep.Findings {
			result.Findings = append(result.Findings, Finding{Check: fd.Check, Func: fd.Func, Tree: fd.Tree, Msg: fd.Msg})
		}
	}
	return result, stats, nil
}

// runner builds one request's private engine over the shared service state:
// shared caches and store, private counters and failure registry.
func (s *Server) runner(ctx context.Context, exec sim.ExecMode, fuel int64, benches ...*bench.Benchmark) *exper.Runner {
	r := exper.New()
	r.Par = s.cfg.Par
	r.Benchmarks = benches
	r.Exec = exec
	if s.cfg.TierUp > 0 {
		r.TierUp = s.cfg.TierUp
	}
	r.Fuel = fuel
	r.Ctx = ctx
	r.Inject = s.cfg.Inject
	r.Store = s.cfg.Store
	r.UseCaches(s.bc, s.nc)
	return r
}
