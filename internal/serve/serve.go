// Package serve is the spdd evaluation daemon: compile → disambiguate →
// schedule → price as a long-running HTTP/JSON service. The routing is thin;
// the point is the robustness contract each request gets:
//
//   - bounded admission (semaphore + queue, 429/503 + Retry-After on
//     saturation) with per-request deadline propagation via context;
//   - per-request fuel/deadline budgets threaded into the engines, so one
//     pathological program fails typed instead of wedging a worker;
//   - per-request panic isolation on the existing resilience rungs (native →
//     bcode → tree, replay → recapture → interp): a poisoned request
//     degrades and is recorded, never crashes the process;
//   - shared, size-bounded service state — one persistent artifact store and
//     one bcode/ncode compiled-code cache pair serve every request — with
//     single-flight dedup of identical in-flight requests;
//   - lifecycle endpoints (/healthz, /readyz, /metrics) and graceful drain.
//
// Endpoints: POST /v1/eval (one cell: source-or-benchmark × pipeline ×
// memory latency), GET /v1/report (the full paper evaluation, byte-identical
// to spdbench stdout), GET /healthz, /readyz, /metrics. docs/SERVICE.md is
// the API reference.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"specdis/internal/bcode"
	"specdis/internal/ncode"
	"specdis/internal/resilience"
	"specdis/internal/sim"
	"specdis/internal/store"
)

// Defaults for the zero Config.
const (
	DefaultMaxInflight    = 4
	DefaultMaxQueue       = 64
	DefaultMaxSourceBytes = 1 << 20 // 1 MiB of MiniC is far beyond the suite
	DefaultFuelCap        = 2_000_000_000
	DefaultDeadlineCap    = 2 * time.Minute
	DefaultDrainTimeout   = 30 * time.Second
	DefaultCacheLimit     = 4096 // compiled-code cache entries per tier
)

// Config configures a Server. The zero value serves with the defaults above,
// the native execution tier, no store, and no fault injection.
type Config struct {
	// Par is each request's evaluation worker-pool width (exper.Runner.Par);
	// 0 means 1 — requests are each other's parallelism, so per-request
	// pools stay narrow by default.
	Par int
	// MaxInflight bounds concurrently running evaluations; MaxQueue bounds
	// requests waiting for a slot. Beyond both: 429 + Retry-After.
	MaxInflight, MaxQueue int
	// MaxSourceBytes bounds a submitted MiniC source (413 beyond it).
	MaxSourceBytes int
	// FuelCap is the per-request dynamic-operation budget cap and default: a
	// request may ask for less fuel, never more.
	FuelCap int64
	// DeadlineCap is the per-request wall-clock budget cap and default.
	DeadlineCap time.Duration
	// DrainTimeout bounds graceful drain: in-flight requests get this long
	// to finish after Drain begins.
	DrainTimeout time.Duration
	// Exec is the default execution tier: "native" (also the empty string),
	// "bcode", or "tree"; requests may select their own. New panics on any
	// other value — a configuration typo, caught at construction. TierUp is
	// the adaptive-tiering threshold under the native tier.
	Exec   string
	TierUp int64
	// CacheLimit bounds each shared compiled-code cache to N entries
	// (bcode.Cache.SetLimit); 0 means DefaultCacheLimit, negative disables
	// the bound.
	CacheLimit int
	// Store, when non-nil, is the shared persistent artifact store; it also
	// backs the shared compiled-code caches.
	Store *store.Store
	// Inject is the seeded fault-injection plan threaded into every
	// request's engine (chaos mode; nil in production). Store-level sio
	// faults are armed by the caller on Store directly — see
	// resilience.FaultPlan.CellKinds.
	Inject *resilience.FaultPlan
}

func (c Config) withDefaults() Config {
	if c.Par <= 0 {
		c.Par = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = DefaultMaxSourceBytes
	}
	if c.FuelCap <= 0 {
		c.FuelCap = DefaultFuelCap
	}
	if c.DeadlineCap <= 0 {
		c.DeadlineCap = DefaultDeadlineCap
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.CacheLimit == 0 {
		c.CacheLimit = DefaultCacheLimit
	}
	return c
}

// Server is the daemon: shared service state plus the HTTP handler over it.
// Create with New; the zero value is not usable.
type Server struct {
	cfg  Config
	exec sim.ExecMode // resolved Config.Exec
	adm  *admission
	mux  *http.ServeMux

	// Shared compiled-code caches: content addressing makes one pair safe
	// across every request and tenant; SetLimit bounds them so no tenant mix
	// can grow service memory without bound. ctrs accumulates their
	// compile/hit/eviction counters at the server level (per-request
	// counters stay in each request's private Runner).
	ctrs bcode.Counters
	bc   *bcode.Cache
	nc   *ncode.Cache

	flights flightGroup
	met     metrics

	draining atomic.Bool
	reqWG    sync.WaitGroup
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, adm: newAdmission(cfg.MaxInflight, cfg.MaxQueue)}
	switch cfg.Exec {
	case "", "native":
		s.exec = sim.ExecNative
	case "bcode":
		s.exec = sim.ExecBytecode
	case "tree":
		s.exec = sim.ExecTree
	default:
		panic(fmt.Sprintf("serve: unknown Config.Exec %q (want native, bcode or tree)", cfg.Exec))
	}
	s.bc = bcode.NewCache(&s.ctrs)
	s.nc = ncode.NewCache(&s.ctrs)
	if cfg.CacheLimit > 0 {
		s.bc.SetLimit(cfg.CacheLimit)
		s.nc.SetLimit(cfg.CacheLimit)
	}
	if cfg.Store != nil {
		s.bc.SetBacking(store.BCodeBacking(cfg.Store))
		s.nc.SetBacking(store.NCodeBacking(cfg.Store))
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: not draining, admission not saturated, and —
// when a store is configured — a live write/read probe through it. A
// not-ready daemon keeps serving in-flight work; the probe tells load
// balancers to route new work elsewhere.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	if s.adm.saturated() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("saturated\n"))
		return
	}
	if st := s.cfg.Store; st != nil {
		k := store.NewKey(store.KindPrep, []byte("serve/readyz-probe"))
		if err := st.Put(k, []byte("probe")); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("store probe failed: " + err.Error() + "\n"))
			return
		}
		if _, ok := st.Get(k); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("store probe readback missed\n"))
			return
		}
	}
	_, _ = w.Write([]byte("ready\n"))
}

// begin registers one request with the drain ladder. It returns false (and
// writes the 503) when the daemon is draining; otherwise the caller must
// call the returned done func when the request finishes.
func (s *Server) begin(w http.ResponseWriter) (done func(), ok bool) {
	if s.draining.Load() {
		s.met.drainRejections.Add(1)
		writeError(w, &apiError{
			Status: http.StatusServiceUnavailable, Class: "draining",
			Msg: "daemon is draining", RetryAfter: 1,
		})
		return nil, false
	}
	s.reqWG.Add(1)
	if s.draining.Load() {
		// Drain began between the check and the registration: withdraw.
		s.reqWG.Done()
		s.met.drainRejections.Add(1)
		writeError(w, &apiError{
			Status: http.StatusServiceUnavailable, Class: "draining",
			Msg: "daemon is draining", RetryAfter: 1,
		})
		return nil, false
	}
	return func() { s.reqWG.Done() }, true
}

// Drain begins graceful shutdown: new requests are rejected with 503 +
// Retry-After while in-flight requests run to completion. It returns nil
// once every in-flight request finished, or the context/drain-timeout error
// if some were still running at the deadline (the caller shuts the listener
// down either way; abandoned requests die with the process).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return context.DeadlineExceeded
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
