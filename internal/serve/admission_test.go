package serve

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestAdmissionSlots pins the semaphore half: MaxInflight slots, release
// frees exactly one, the gauges track occupancy.
func TestAdmissionSlots(t *testing.T) {
	a := newAdmission(2, 4)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := a.acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}

	// Pool full: a third acquire must queue; cancelling its context must
	// return a typed 504, not block forever.
	qctx, cancel := context.WithCancel(ctx)
	errCh := make(chan *apiError, 1)
	go func() { errCh <- a.acquire(qctx) }()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	apiErr := <-errCh
	if apiErr == nil || apiErr.Status != http.StatusGatewayTimeout || apiErr.Class != "deadline" {
		t.Fatalf("queued-past-deadline: %+v, want 504 deadline", apiErr)
	}
	if a.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after the queued request left", a.QueueDepth())
	}

	// Releasing a slot lets a queued request in.
	go func() { errCh <- a.acquire(ctx) }()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	a.release()
	if apiErr := <-errCh; apiErr != nil {
		t.Fatalf("acquire after release: %+v", apiErr)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight %d after handoff, want 2", got)
	}
}

// TestAdmissionQueueOverflow pins the shedding half: with the pool and the
// queue both full, the next acquire is rejected immediately with 429 +
// Retry-After — bounded memory, no unbounded waiting.
func TestAdmissionQueueOverflow(t *testing.T) {
	a := newAdmission(1, 2)
	ctx := context.Background()
	if err := a.acquire(ctx); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan *apiError, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- a.acquire(qctx) }()
	}
	for a.QueueDepth() != 2 {
		time.Sleep(time.Millisecond)
	}
	if !a.saturated() {
		t.Fatal("saturated() false with a full pool and full queue")
	}

	apiErr := a.acquire(ctx)
	if apiErr == nil || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("overflow acquire: %+v, want 429", apiErr)
	}
	if apiErr.Class != "saturated" || apiErr.RetryAfter <= 0 {
		t.Fatalf("overflow acquire: class %q retry-after %d", apiErr.Class, apiErr.RetryAfter)
	}

	// The rejection did not consume queue capacity.
	if a.QueueDepth() != 2 {
		t.Fatalf("queue depth %d after rejection, want 2", a.QueueDepth())
	}
	cancel()
	for i := 0; i < 2; i++ {
		if e := <-done; e == nil || e.Status != http.StatusGatewayTimeout {
			t.Fatalf("queued request: %+v, want 504", e)
		}
	}
}

// TestAdmissionOverHTTP drives saturation end to end: with one slot and a
// one-deep queue, a burst of slow evaluations must produce at least one 429
// with a Retry-After header while every admitted request still succeeds.
func TestAdmissionOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})

	// Park the slot and fill the queue with synthetic acquires, so the HTTP
	// request's rejection is deterministic rather than a scheduling race.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatalf("park slot: %v", err)
	}
	qctx, qcancel := context.WithCancel(context.Background())
	queued := make(chan *apiError, 1)
	go func() { queued <- s.adm.acquire(qctx) }()
	for s.adm.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}

	status, hdr, resp := postEval(t, ts.URL, EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2})
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated eval: status %d (%+v)", status, resp.Error)
	}
	if resp.Error == nil || resp.Error.Class != "saturated" || hdr.Get("Retry-After") == "" {
		t.Fatalf("saturated eval: %+v, Retry-After %q", resp.Error, hdr.Get("Retry-After"))
	}
	if status, _, body := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable || string(body) != "saturated\n" {
		t.Fatalf("readyz while saturated: %d %q", status, body)
	}
	if m := s.Snapshot(); m.Server.AdmissionRejections == 0 {
		t.Fatalf("admission_rejections 0 after a 429: %+v", m.Server)
	}

	// Free the slot and the queue: the daemon recovers without restart.
	qcancel()
	<-queued
	s.adm.release()
	status, _, resp = postEval(t, ts.URL, EvalRequest{Bench: "perm", Pipeline: "SPEC", MemLat: 2})
	if status != http.StatusOK {
		t.Fatalf("eval after saturation cleared: status %d (%+v)", status, resp.Error)
	}
}
