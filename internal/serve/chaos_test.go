package serve

// Chaos soak: the daemon under concurrent load with every cell faulted by a
// fixed-seed recoverable plan (compiled-engine panics + trace bit-flips).
// The contract under test is the tentpole's robustness claim end to end:
//
//   - the process never dies — every response is HTTP, never a crash;
//   - every response is byte-identical to a clean batch evaluation of the
//     same cell (recoverable faults are invisible in results) or a typed
//     error (none here: this plan is fully recoverable);
//   - the degradation rungs taken are exactly the fixed-seed pins — fault
//     dealing is seeded per cell name and each request runs a private
//     engine, so the aggregate counters are deterministic;
//   - drain under load completes in-flight requests and rejects new ones.
//
// The companion store test arms the store-level I/O fault kind (sio) in the
// daemon path: injected short reads and transient open failures must repair
// transparently with results byte-identical to the unfaulted run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"specdis/internal/resilience"
	"specdis/internal/store"
)

// soakCells are the eight concurrent clients' distinct cells. Distinct on
// purpose: identical concurrent requests would dedup into one flight and
// the pinned per-cell fault counts would stop being additive.
var soakCells = []EvalRequest{
	{Bench: "perm", Pipeline: "SPEC", MemLat: 2},
	{Bench: "queen", Pipeline: "SPEC", MemLat: 6},
	{Bench: "quick", Pipeline: "NAIVE", MemLat: 2},
	{Bench: "tree", Pipeline: "STATIC", MemLat: 6},
	{Bench: "fft", Pipeline: "SPEC", MemLat: 2},
	{Bench: "moment", Pipeline: "PERFECT", MemLat: 6},
	{Bench: "adi", Pipeline: "STATIC", MemLat: 2},
	{Bench: "boolmin", Pipeline: "NAIVE", MemLat: 6},
}

func TestChaosSoak(t *testing.T) {
	plan, err := resilience.ParsePlan("seed=7,rate=1,kinds=bpanic+flip,times=1")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Inject: plan, MaxInflight: 4, DrainTimeout: 30 * time.Second})

	// Clean oracle: a faultless server computes each cell's expected bytes.
	_, cleanTS := newTestServer(t, Config{})
	want := make([]json.RawMessage, len(soakCells))
	for i, req := range soakCells {
		status, _, resp := postEval(t, cleanTS.URL, req)
		if status != http.StatusOK {
			t.Fatalf("clean baseline %d: status %d (%+v)", i, status, resp.Error)
		}
		want[i] = resp.Result
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(soakCells)*rounds)
	for i, req := range soakCells {
		wg.Add(1)
		go func(i int, req EvalRequest) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				status, _, resp := postEval(t, ts.URL, req)
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d round %d: status %d (%+v)", i, round, status, resp.Error)
					return
				}
				if !bytes.Equal(resp.Result, want[i]) {
					errs <- fmt.Errorf("client %d round %d: faulted result differs from clean baseline:\n%s\n%s",
						i, round, resp.Result, want[i])
					return
				}
				if resp.Stats.FaultsInjected == 0 {
					errs <- fmt.Errorf("client %d round %d: no faults injected — the chaos plan did not reach the engine", i, round)
					return
				}
			}
		}(i, req)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// The aggregate degradation counters are pinned: seeded dealing by cell
	// name × private per-request engines × a fixed cell set × 3 rounds.
	// The plan deals bpanic to four of the eight cells and flip to the
	// other four. Each bpanic cell walks the full native → bcode → tree
	// ladder (bpanic arms on both compiled engines), so the two fallback
	// counters match at 4 × 3 rounds = 12; each flip cell recaptures its
	// corrupted trace once, 4 × 3 = 12; every cell arms, 8 × 3 = 24.
	m := s.Snapshot()
	d := m.Degradation
	if d.CellFailures != 0 || d.CellPanics != 0 || d.FuelExhausted != 0 || d.DeadlineExceeded != 0 {
		t.Errorf("recoverable-only plan produced hard failures: %+v", d)
	}
	if d.NCodeFallbacks != 12 || d.BCodeFallbacks != 12 || d.TraceRecaptures != 12 || d.FaultsInjected != 24 {
		t.Errorf("degradation counters off the fixed-seed pins:\n got %+v\nwant ncode_fallbacks=12 bcode_fallbacks=12 trace_recaptures=12 faults_injected=24", d)
	}
	if m.Server.EvalErrors != 0 || m.Server.Evals != int64(len(soakCells)*rounds) {
		t.Errorf("server counters: %+v", m.Server)
	}

	// Drain under load: park one more faulted evaluation mid-flight, begin
	// the drain, and require the in-flight request to complete (still
	// byte-identical) while new work bounces with a typed 503.
	inflight := make(chan *evalResp, 1)
	statusCh := make(chan int, 1)
	go func() {
		status, _, resp := postEval(t, ts.URL, soakCells[0])
		statusCh <- status
		inflight <- resp
	}()
	for s.adm.Inflight() == 0 && len(statusCh) == 0 {
		time.Sleep(time.Millisecond)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if status, _, resp := postEval(t, ts.URL, soakCells[1]); status != http.StatusServiceUnavailable || resp.Error == nil || resp.Error.Class != "draining" {
		t.Fatalf("eval during drain: status %d, %+v", status, resp.Error)
	}
	if status := <-statusCh; status != http.StatusOK {
		t.Fatalf("in-flight eval during drain: status %d", status)
	}
	if resp := <-inflight; !bytes.Equal(resp.Result, want[0]) {
		t.Fatal("in-flight eval completed with wrong bytes under drain")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain under load: %v", err)
	}
}

// TestServeStoreIOFaults arms the store-level I/O fault kind (satellite:
// sio) in the daemon path: a warm request whose artifact reads suffer
// injected short reads and transient open failures must transparently
// recompute/repair — same status, same bytes, faults visible only in the
// store counters.
func TestServeStoreIOFaults(t *testing.T) {
	plan, err := resilience.ParsePlan("seed=11,rate=1,kinds=sio")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.CellKinds()) != 0 || !plan.StoreIO() {
		t.Fatalf("sio-only plan parsed wrong: cell kinds %v", plan.CellKinds())
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Mirror cmd/spdd's wiring: a sio-only plan never reaches Config.Inject
	// (which would bypass the store per cell); it arms on the store itself.
	// Disabling the memory front forces every warm read through the disk
	// path, where the armed faults live.
	st.ArmIOFaults(plan.Seed, plan.Rate)
	st.SetMemCap(0)
	s, ts := newTestServer(t, Config{Store: st})

	req := EvalRequest{Bench: "quick", Pipeline: "SPEC", MemLat: 2}
	var results [3]json.RawMessage
	for i := range results {
		status, _, resp := postEval(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("pass %d: status %d (%+v)", i, status, resp.Error)
		}
		results[i] = resp.Result
		if !bytes.Equal(results[0], resp.Result) {
			t.Fatalf("pass %d: result changed under store I/O faults", i)
		}
	}
	m := s.Snapshot()
	if m.Store == nil {
		t.Fatal("no store metrics")
	}
	if m.Store.IOShortReads+m.Store.IOOpenErrors == 0 {
		t.Fatalf("no store I/O faults fired on the warm passes: %+v", m.Store)
	}
	if m.Store.IOShortReads > 0 && m.Store.CorruptDropped == 0 {
		t.Fatalf("short reads without corrupt-drop repairs: %+v", m.Store)
	}
	if m.Server.EvalErrors != 0 {
		t.Fatalf("store faults surfaced as request errors: %+v", m.Server)
	}
}
