package exper_test

import (
	"strings"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/sim"
)

// execRunner returns a single-benchmark runner on the given backend, forced
// onto the interpreting measurement path so every cell actually executes.
func execRunner(mode sim.ExecMode) (*exper.Runner, *bench.Benchmark) {
	b := bench.ByName("moment")
	r := exper.New()
	r.Benchmarks = []*bench.Benchmark{b}
	r.TraceReplay = false
	r.Exec = mode
	return r, b
}

// TestSharedCompileCacheHits proves the runner-wide content-addressed caches
// pay off across cells: pipelines that only touch arcs (NAIVE, STATIC,
// PERFECT) execute identical trees, so after the first cell compiles them,
// later cells hit instead of recompiling. This is the regression test for
// the trees_compiled ≫ cache_hits = 0 bug, on both compiled backends.
func TestSharedCompileCacheHits(t *testing.T) {
	for _, mode := range []sim.ExecMode{sim.ExecBytecode, sim.ExecNative} {
		t.Run(mode.String(), func(t *testing.T) {
			r, b := execRunner(mode)
			for _, kind := range []disamb.Kind{disamb.Naive, disamb.Static, disamb.Perfect} {
				if _, err := r.Measure(b, kind, 2); err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
			}
			st := r.Stats()
			if st.BCodeCompiled == 0 {
				t.Fatal("no trees compiled: the cells did not run on a compiled backend")
			}
			if st.BCodeCacheHits == 0 {
				t.Fatalf("cache hits = 0 across %d compilations: the shared cache is not shared", st.BCodeCompiled)
			}
			// Arc-only pipelines share every tree body, so hits must
			// dominate: at most one compilation per distinct tree.
			if st.BCodeCacheHits < st.BCodeCompiled {
				t.Errorf("hits (%d) < compiles (%d): identical clones are recompiling", st.BCodeCacheHits, st.BCodeCompiled)
			}
		})
	}
}

// TestExecModesProduceIdenticalReports renders Figure 6-2 under all three
// execution backends and requires byte-identical output — the exper-layer
// half of the CI byte-identity matrix.
func TestExecModesProduceIdenticalReports(t *testing.T) {
	render := func(mode sim.ExecMode) string {
		r, _ := execRunner(mode)
		rows, err := r.Figure62()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if st := r.Stats(); st.CellFailures != 0 || st.BCodeFallbacks != 0 || st.NCodeFallbacks != 0 {
			t.Fatalf("%v: clean run degraded: %+v", mode, st)
		}
		var sb strings.Builder
		exper.RenderFigure62(&sb, rows)
		return sb.String()
	}
	ref := render(sim.ExecBytecode)
	for _, mode := range []sim.ExecMode{sim.ExecNative, sim.ExecTree} {
		if got := render(mode); got != ref {
			t.Errorf("%v report diverged from bytecode:\n%s\n--- vs ---\n%s", mode, got, ref)
		}
	}
}
