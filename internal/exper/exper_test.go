package exper_test

import (
	"strings"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/exper"
)

// runner is shared by all tests in this package: the cache makes the whole
// file cost roughly one full evaluation.
var runner = exper.New()

func subset() *exper.Runner {
	r := exper.New()
	r.Benchmarks = []*bench.Benchmark{
		bench.ByName("fft"), bench.ByName("quick"), bench.ByName("moment"),
	}
	return r
}

func TestTable63Shape(t *testing.T) {
	rows, err := runner.Table63()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.All())+1 {
		t.Fatalf("got %d rows", len(rows))
	}
	total := rows[len(rows)-1]
	if total.Program != "TOTAL" {
		t.Fatal("missing TOTAL row")
	}
	// The paper's strongest qualitative findings: SpD favours RAW
	// dependences heavily, WAW appears occasionally, WAR never pays off.
	if total.RAW2 == 0 || total.RAW6 == 0 {
		t.Error("no RAW applications at all")
	}
	if total.WAW2 == 0 || total.WAW6 == 0 {
		t.Error("no WAW applications at all")
	}
	if total.WAR2 != 0 || total.WAR6 != 0 {
		t.Errorf("WAR applications should be zero (paper Table 6-3): %+v", total)
	}
	if total.RAW2 <= total.WAW2 || total.RAW6 <= total.WAW6 {
		t.Errorf("RAW should dominate WAW: %+v", total)
	}
	var sum Table63 = rows[:len(rows)-1]
	if sum.raw2() != total.RAW2 || sum.waw6() != total.WAW6 {
		t.Error("TOTAL row does not sum the benchmark rows")
	}
}

type Table63 []exper.Table63Row

func (rs Table63) raw2() int {
	n := 0
	for _, r := range rs {
		n += r.RAW2
	}
	return n
}
func (rs Table63) waw6() int {
	n := 0
	for _, r := range rs {
		n += r.WAW6
	}
	return n
}

func TestFigure62Shape(t *testing.T) {
	rows, err := runner.Figure62()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(bench.All()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// PERFECT removes a superset of what STATIC removes; with the same
		// scheduler it should never lose to STATIC by more than scheduling
		// noise.
		if r.Perfect < r.Static-0.02 {
			t.Errorf("%s m%d: PERFECT (%.3f) below STATIC (%.3f)", r.Program, r.MemLat, r.Perfect, r.Static)
		}
	}
	// The headline anecdote (§6.3): on quick, SPEC beats PERFECT.
	found := false
	for _, r := range rows {
		if r.Program == "quick" && r.Spec > r.Perfect {
			found = true
		}
	}
	if !found {
		t.Error("quick: SPEC never outperforms PERFECT (paper's Figure 6-2 anecdote)")
	}
}

func TestFigure63Shape(t *testing.T) {
	rows, err := runner.Figure63()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(bench.NRC()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for _, b := range bench.NRC() {
			if b.Name == r.Program {
				goto ok
			}
		}
		t.Fatalf("non-NRC program %s in Figure 6-3", r.Program)
	ok:
	}
	// §6.3: SpD slows narrow machines down and pays off on wide ones: at
	// least one benchmark must show a negative at 1 FU and a positive at 8.
	var sawNeg, sawPos bool
	for _, r := range rows {
		if r.Speedup[0] < 0 {
			sawNeg = true
		}
		if r.Speedup[exper.MaxWidth-1] > 0.05 {
			sawPos = true
		}
	}
	if !sawNeg || !sawPos {
		t.Errorf("resource crossover missing: neg@1FU=%v pos@8FU=%v", sawNeg, sawPos)
	}
}

func TestFigure64Shape(t *testing.T) {
	rows, err := runner.Figure64()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.All()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.AfterOps < r.BeforeOps {
			t.Errorf("%s: SpD shrank the code %d -> %d", r.Program, r.BeforeOps, r.AfterOps)
		}
		if r.IncreasePct < 0 || r.IncreasePct > 100 {
			t.Errorf("%s: unreasonable code growth %.1f%%", r.Program, r.IncreasePct)
		}
	}
}

func TestMeasurementMonotonicInWidth(t *testing.T) {
	r := subset()
	for _, b := range r.Benchmarks {
		for _, kind := range disamb.Kinds {
			m, err := r.Measure(b, kind, 2)
			if err != nil {
				t.Fatal(err)
			}
			for w := 1; w < exper.MaxWidth; w++ {
				if m.ByWidth[w] > m.ByWidth[w-1] {
					t.Errorf("%s/%s: %d FUs slower than %d", b.Name, kind, w+1, w)
				}
			}
			if m.ByWidth[exper.MaxWidth-1] < m.Inf {
				t.Errorf("%s/%s: 8 FUs beat the infinite machine", b.Name, kind)
			}
		}
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	exper.RenderTable61(&sb)
	exper.RenderTable62(&sb, bench.All())
	rows63, err := runner.Table63()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderTable63(&sb, rows63)
	rows62, err := runner.Figure62()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure62(&sb, rows62)
	rowsF63, err := runner.Figure63()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure63(&sb, rowsF63)
	rows64, err := runner.Figure64()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure64(&sb, rows64)
	out := sb.String()
	for _, want := range []string{
		"Table 6-1", "Table 6-2", "Table 6-3", "Figure 6-2", "Figure 6-3",
		"Figure 6-4", "TOTAL", "espresso", "5-FU machine",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report lacks %q", want)
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := exper.New()
	grows, err := r.ExtGrafting(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(grows) == 0 {
		t.Fatal("no grafting rows")
	}
	totalGrafts := 0
	for _, g := range grows {
		totalGrafts += g.Grafts
		if g.AppsGrafted < g.AppsPlain {
			t.Errorf("%s: grafting lost SpD applications (%d -> %d)", g.Program, g.AppsPlain, g.AppsGrafted)
		}
		if g.SpeedupPct() < -10 {
			t.Errorf("%s: grafting slowed the program badly (%.1f%%)", g.Program, g.SpeedupPct())
		}
	}
	if totalGrafts == 0 {
		t.Error("grafting never applied")
	}

	crows, err := r.ExtCombined(6)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, c := range crows {
		covered += c.PairsCombined
		if c.PairsCombined > 0 && c.OpsCombined <= 0 {
			t.Errorf("%s: pairs without ops", c.Program)
		}
	}
	if covered == 0 {
		t.Error("combined speculation never applied on NRC")
	}

	var sb strings.Builder
	exper.RenderExtensions(&sb, grows, crows)
	if !strings.Contains(sb.String(), "grafting") || !strings.Contains(sb.String(), "combined") {
		t.Error("extension rendering incomplete")
	}
}

func TestDynamicOverhead(t *testing.T) {
	r := subset()
	rows, err := r.DynamicOverhead(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(r.Benchmarks) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.SpecExecuted < row.NaiveExecuted {
			t.Errorf("%s: SPEC executes fewer ops than NAIVE (%d < %d)",
				row.Program, row.SpecExecuted, row.NaiveExecuted)
		}
		if row.SpecCommitted > row.SpecExecuted {
			t.Errorf("%s: committed exceeds executed", row.Program)
		}
		if row.WastePct() < 0 || row.WastePct() > 100 {
			t.Errorf("%s: waste %.1f%%", row.Program, row.WastePct())
		}
	}
	var sb strings.Builder
	exper.RenderOverhead(&sb, rows)
	if !strings.Contains(sb.String(), "overhead") {
		t.Error("render incomplete")
	}
}
