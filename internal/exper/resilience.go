package exper

// This file is the experiment engine's fault-tolerance layer: every cell
// boundary recovers panics into structured resilience.CellErrors, failures
// are recorded in a registry instead of aborting the grid, and failed cells
// walk a bounded degradation ladder before giving up:
//
//	native failure     → one retry on the bytecode engine
//	bytecode failure   → one retry on the reference tree walker
//	corrupt trace      → one fresh capture, replayed
//	still corrupt      → interpreting measurement (no trace at all)
//
// Fuel and deadline failures never retry (the outcome is determined by the
// budget, not the backend), and every rung taken is counted in Stats. The
// seeded fault-injection plan (Runner.Inject) manufactures each failure on
// demand so tests and the chaos-smoke CI job can prove every rung fires.

import (
	"errors"
	"sort"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/resilience"
	"specdis/internal/sim"
	"specdis/internal/trace"
)

// failCell classifies and registers one cell's failure, returning the
// structured error the cell's cache entry keeps. An error that already
// carries a CellError (a failed dependency cell surfacing through this one,
// or a cached failure re-requested) keeps its original identity, and the
// registry dedupes by cell name — each failure is counted exactly once, at
// its origin.
func (r *Runner) failCell(err error, b string, kind disamb.Kind, memLat int, stage string) error {
	ce := resilience.AsCellError(err, b, kind.String(), memLat, stage)
	r.failMu.Lock()
	if r.failed == nil {
		r.failed = map[string]*resilience.CellError{}
	}
	_, seen := r.failed[ce.Cell()]
	if !seen {
		r.failed[ce.Cell()] = ce
	}
	r.failMu.Unlock()
	if !seen {
		r.nCellFails.Add(1)
		switch ce.Class {
		case resilience.ClassPanic:
			r.nPanics.Add(1)
		case resilience.ClassFuel:
			r.nFuel.Add(1)
		case resilience.ClassDeadline:
			r.nDeadline.Add(1)
		}
	}
	return ce
}

// Failures returns every distinct failed cell, sorted by cell name. Empty on
// a clean run.
func (r *Runner) Failures() []*resilience.CellError {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	out := make([]*resilience.CellError, 0, len(r.failed))
	for _, ce := range r.failed {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell() < out[j].Cell() })
	return out
}

// failNote renders a failure as the short marker experiment rows carry.
func failNote(err error) string {
	var ce *resilience.CellError
	if errors.As(err, &ce) {
		return ce.Class.String()
	}
	return "error"
}

// measureCell runs one measurement cell through the degradation ladder.
// cellLat is the cell's canonical latency key (0 for the shared
// latency-insensitive cell); memLat is the latency the measurement models
// were built for.
func (r *Runner) measureCell(b *bench.Benchmark, kind disamb.Kind, cellLat, memLat int, p *disamb.Prepared, models []machine.Model) (*sim.Result, error) {
	fault := r.Inject.For(resilience.CellName(b.Name, kind.String(), cellLat))
	if fault.Kind != resilience.FaultNone {
		r.nInjected.Add(1)
	}
	opt := disamb.MeasureOpt{Ctx: r.Ctx}
	if fault.Kind == resilience.FaultDropSchedule {
		opt.ChaosPlans = func(plans []*sim.Plan) { dropMainSchedule(p.Prog, plans) }
	}

	// Fuel and panic faults bite inside an interpretation, which the replay
	// backend never performs per cell — force the faulted cell onto the
	// interpreting path so the failure (and its recovery) actually happens.
	switch fault.Kind {
	case resilience.FaultFuel, resilience.FaultPanic, resilience.FaultBCodePanic:
		return r.interpMeasure(b, kind, cellLat, p, models, opt, fault)
	}
	if !r.TraceReplay {
		return r.interpMeasure(b, kind, cellLat, p, models, opt, fault)
	}

	tr, err := r.traceFor(b, kind, memLat)
	if err != nil {
		return nil, err // registered by traceFor at its origin
	}
	if fault.Kind == resilience.FaultFlipTrace {
		tr = tr.Clone()
		tr.FlipByte(int(fault.N))
	}
	res, rerr := disamb.ReplayMeasureWith(p, models, tr, opt)
	if rerr == nil {
		r.nReplayCells.Add(1)
		return res, nil
	}
	if resilience.Classify(rerr) != resilience.ClassCorruptTrace {
		return nil, rerr
	}

	// Rung: corrupt trace → one fresh capture, replayed. The shared trace
	// cache is left alone — the recapture serves this cell only.
	r.nRecapture.Add(1)
	tr2, cerr := r.recaptureCell(b, kind, cellLat, p)
	if cerr == nil {
		if fault.Kind == resilience.FaultFlipTrace && fault.Times > 1 {
			tr2.FlipByte(int(fault.N))
		}
		res, rerr = disamb.ReplayMeasureWith(p, models, tr2, opt)
		if rerr == nil {
			r.nReplayCells.Add(1)
			return res, nil
		}
	} else {
		rerr = cerr
	}
	if cls := resilience.Classify(rerr); cls == resilience.ClassFuel || cls == resilience.ClassDeadline {
		return nil, rerr
	}

	// Rung: replay unusable → measure the cell by interpretation.
	r.nInterpFallback.Add(1)
	return r.interpMeasure(b, kind, cellLat, p, models, opt, fault)
}

// recaptureCell records a fresh trace for one cell, containing panics.
func (r *Runner) recaptureCell(b *bench.Benchmark, kind disamb.Kind, cellLat int, p *disamb.Prepared) (tr *trace.Trace, err error) {
	defer resilience.Recover(&err, b.Name, kind.String(), cellLat, "recapture")
	return disamb.Recapture(p, disamb.MeasureOpt{Ctx: r.Ctx})
}

// fallbackOf returns the rung below mode on the execution-backend
// degradation ladder (native → bytecode → tree), and false at the bottom.
func fallbackOf(mode sim.ExecMode) (sim.ExecMode, bool) {
	switch mode {
	case sim.ExecNative:
		return sim.ExecBytecode, true
	case sim.ExecBytecode:
		return sim.ExecTree, true
	}
	return mode, false
}

// noteFallback counts one ladder rung taken, attributed to the backend it
// falls away from.
func (r *Runner) noteFallback(from sim.ExecMode) {
	if from == sim.ExecNative {
		r.nNCodeFallback.Add(1)
	} else {
		r.nBCodeFallback.Add(1)
	}
}

// interpMeasure prices one cell by interpretation, applying the cell's
// injected fault and — for retryable compiled-engine failures — walking the
// native → bytecode → tree ladder one rung per failure.
func (r *Runner) interpMeasure(b *bench.Benchmark, kind disamb.Kind, cellLat int, p *disamb.Prepared, models []machine.Model, opt disamb.MeasureOpt, fault resilience.Fault) (*sim.Result, error) {
	attempt := func(mode sim.ExecMode) (res *sim.Result, err error) {
		defer resilience.Recover(&err, b.Name, kind.String(), cellLat, "measure")
		o := opt
		o.Exec, o.ExecSet = mode, true
		switch fault.Kind {
		case resilience.FaultFuel:
			o.MaxOps = fault.N
		case resilience.FaultPanic:
			o.ChaosPanicAt = fault.N
		case resilience.FaultBCodePanic:
			// The compiled-engine-only panic: the tree-walker rung runs
			// unarmed, so this fault proves the ladder recovers the cell.
			if mode != sim.ExecTree {
				o.ChaosPanicAt = fault.N
			}
		}
		return disamb.MeasureWith(p, models, o)
	}
	res, err := attempt(p.Exec)
	if err == nil {
		r.nInterpCells.Add(1)
		return res, nil
	}
	mode := p.Exec
	for resilience.Classify(err).Retryable() {
		// Rung: compiled-engine failure → one retry on the next backend
		// down. The first error is kept when every rung fails too: it names
		// the root cause on the primary backend.
		fb, ok := fallbackOf(mode)
		if !ok {
			break
		}
		r.noteFallback(mode)
		if res, err2 := attempt(fb); err2 == nil {
			r.nInterpCells.Add(1)
			return res, nil
		} else if !resilience.Classify(err2).Retryable() {
			break
		}
		mode = fb
	}
	return nil, err
}

// dropMainSchedule deletes the schedule of main's entry tree from every
// plan — the schedule-dropping fault. Targeting a tree that certainly
// executes makes the injected failure deterministic.
func dropMainSchedule(prog *ir.Program, plans []*sim.Plan) {
	mainFn := prog.Funcs[prog.Main]
	if mainFn == nil || len(mainFn.Trees) == 0 {
		return
	}
	entry := mainFn.Trees[mainFn.Entry]
	for _, p := range plans {
		for i, t := range p.Trees() {
			if t == entry {
				p.Drop(i)
				break
			}
		}
	}
}
