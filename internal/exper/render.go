package exper

import (
	"fmt"
	"io"
	"strings"

	"specdis/internal/bench"
	"specdis/internal/machine"
)

// Each report has three layers: a header printer and a row printer (the
// formatting, shared verbatim), a batch renderer over precomputed rows
// (RenderX — kept for tests and programmatic use), and a streaming renderer
// on the Runner (StreamX — what spdbench uses) that prints each row the
// moment its cells resolve, while later cells are still computing on the
// work-stealing pool. Both renderers drive the same printers over rows in
// the same order, so their output is byte-identical by construction.

// RenderTable62 prints the benchmark listing (Table 6-2).
func RenderTable62(w io.Writer, benches []*bench.Benchmark) {
	fmt.Fprintf(w, "Table 6-2: Benchmark Descriptions\n")
	fmt.Fprintf(w, "%-10s %-9s %6s  %s\n", "Benchmark", "Suite", "Lines", "Description")
	for _, b := range benches {
		fmt.Fprintf(w, "%-10s %-9s %6d  %s\n", b.Name, b.Suite, b.Lines(), b.Desc)
	}
}

// RenderTable61 prints the latency table (Table 6-1).
func RenderTable61(w io.Writer) {
	fmt.Fprintf(w, "Table 6-1: Operation latencies (memory latency 2 or 6)\n")
	fmt.Fprint(w, machine.Describe(2))
}

// ---- Table 6-3 ----------------------------------------------------------

func printTable63Header(w io.Writer) {
	fmt.Fprintf(w, "Table 6-3: Frequency of SpD application by dependence type\n")
	fmt.Fprintf(w, "%-10s | %-17s | %-17s\n", "", "2 Cycle Memory", "6 Cycle Memory")
	fmt.Fprintf(w, "%-10s | %5s %5s %5s | %5s %5s %5s\n",
		"Program", "RAW", "WAR", "WAW", "RAW", "WAR", "WAW")
	fmt.Fprintln(w, strings.Repeat("-", 50))
}

func printTable63Row(w io.Writer, r Table63Row) {
	if r.Fail != "" {
		fmt.Fprintf(w, "%-10s | FAIL(%s)\n", r.Program, r.Fail)
		return
	}
	fmt.Fprintf(w, "%-10s | %5d %5d %5d | %5d %5d %5d\n",
		r.Program, r.RAW2, r.WAR2, r.WAW2, r.RAW6, r.WAR6, r.WAW6)
}

// RenderTable63 prints Table 6-3 from precomputed rows.
func RenderTable63(w io.Writer, rows []Table63Row) {
	printTable63Header(w)
	for _, r := range rows {
		printTable63Row(w, r)
	}
}

// StreamTable63 computes and prints Table 6-3, emitting each row as soon as
// its cells resolve. Output is byte-identical to RenderTable63 over
// Table63().
func (r *Runner) StreamTable63(w io.Writer) error {
	printTable63Header(w)
	return r.streamTable63(func(row Table63Row) { printTable63Row(w, row) })
}

// ---- Figure 6-2 ----------------------------------------------------------

func printFigure62Header(w io.Writer) {
	fmt.Fprintf(w, "Figure 6-2: Speedup over the NAIVE disambiguator, %d-FU machine\n", Fig62Width)
	fmt.Fprintf(w, "(speedup = cycles(NAIVE)/cycles(X) - 1)\n")
}

func printFigure62Section(w io.Writer, memLat int) {
	fmt.Fprintf(w, "\n%d Cycle Memory Latency\n", memLat)
	fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "Program", "STATIC", "SPEC", "PERFECT")
}

func printFigure62Row(w io.Writer, r Fig62Row) {
	if r.Fail != "" {
		fmt.Fprintf(w, "%-10s FAIL(%s)\n", r.Program, r.Fail)
		return
	}
	fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n",
		r.Program, 100*r.Static, 100*r.Spec, 100*r.Perfect)
}

// RenderFigure62 prints Figure 6-2 from precomputed rows.
func RenderFigure62(w io.Writer, rows []Fig62Row) {
	printFigure62Header(w)
	for _, memLat := range MemLats {
		printFigure62Section(w, memLat)
		for _, r := range rows {
			if r.MemLat != memLat {
				continue
			}
			printFigure62Row(w, r)
		}
	}
}

// StreamFigure62 computes and prints Figure 6-2 row by row. Output is
// byte-identical to RenderFigure62 over Figure62().
func (r *Runner) StreamFigure62(w io.Writer) error {
	printFigure62Header(w)
	memLat := -1
	return r.streamFigure62(func(row Fig62Row) {
		if row.MemLat != memLat {
			memLat = row.MemLat
			printFigure62Section(w, memLat)
		}
		printFigure62Row(w, row)
	})
}

// ---- Figure 6-3 ----------------------------------------------------------

func printFigure63Header(w io.Writer) {
	fmt.Fprintf(w, "Figure 6-3: Speedup of SPEC over STATIC (NRC benchmarks)\n")
}

func printFigure63Section(w io.Writer, memLat int) {
	fmt.Fprintf(w, "\n%d Cycle Memory Latency (speedup %% per machine width)\n", memLat)
	fmt.Fprintf(w, "%-10s", "Program")
	for wd := 1; wd <= MaxWidth; wd++ {
		fmt.Fprintf(w, " %6dFU", wd)
	}
	fmt.Fprintln(w)
}

func printFigure63Row(w io.Writer, r Fig63Row) {
	if r.Fail != "" {
		fmt.Fprintf(w, "%-10s FAIL(%s)\n", r.Program, r.Fail)
		return
	}
	fmt.Fprintf(w, "%-10s", r.Program)
	for _, s := range r.Speedup {
		fmt.Fprintf(w, " %7.1f%%", 100*s)
	}
	fmt.Fprintln(w)
}

// RenderFigure63 prints Figure 6-3 from precomputed rows.
func RenderFigure63(w io.Writer, rows []Fig63Row) {
	printFigure63Header(w)
	for _, memLat := range MemLats {
		printFigure63Section(w, memLat)
		for _, r := range rows {
			if r.MemLat != memLat {
				continue
			}
			printFigure63Row(w, r)
		}
	}
}

// StreamFigure63 computes and prints Figure 6-3 row by row. Output is
// byte-identical to RenderFigure63 over Figure63().
func (r *Runner) StreamFigure63(w io.Writer) error {
	printFigure63Header(w)
	memLat := -1
	return r.streamFigure63(func(row Fig63Row) {
		if row.MemLat != memLat {
			memLat = row.MemLat
			printFigure63Section(w, memLat)
		}
		printFigure63Row(w, row)
	})
}

// ---- Figure 6-4 ----------------------------------------------------------

func printFigure64Header(w io.Writer) {
	fmt.Fprintf(w, "Figure 6-4: Code size increase due to SpD (2-cycle memory)\n")
	fmt.Fprintf(w, "(operations, not VLIW instructions)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %9s\n", "Program", "before", "after", "increase")
}

func printFigure64Row(w io.Writer, r Fig64Row) {
	if r.Fail != "" {
		fmt.Fprintf(w, "%-10s FAIL(%s)\n", r.Program, r.Fail)
		return
	}
	fmt.Fprintf(w, "%-10s %8d %8d %8.1f%%\n",
		r.Program, r.BeforeOps, r.AfterOps, r.IncreasePct)
}

// RenderFigure64 prints Figure 6-4 from precomputed rows.
func RenderFigure64(w io.Writer, rows []Fig64Row) {
	printFigure64Header(w)
	for _, r := range rows {
		printFigure64Row(w, r)
	}
}

// StreamFigure64 computes and prints Figure 6-4 row by row. Output is
// byte-identical to RenderFigure64 over Figure64().
func (r *Runner) StreamFigure64(w io.Writer) error {
	printFigure64Header(w)
	return r.streamFigure64(func(row Fig64Row) { printFigure64Row(w, row) })
}
