package exper

import (
	"fmt"
	"io"
	"strings"

	"specdis/internal/bench"
	"specdis/internal/machine"
)

// RenderTable62 prints the benchmark listing (Table 6-2).
func RenderTable62(w io.Writer, benches []*bench.Benchmark) {
	fmt.Fprintf(w, "Table 6-2: Benchmark Descriptions\n")
	fmt.Fprintf(w, "%-10s %-9s %6s  %s\n", "Benchmark", "Suite", "Lines", "Description")
	for _, b := range benches {
		fmt.Fprintf(w, "%-10s %-9s %6d  %s\n", b.Name, b.Suite, b.Lines(), b.Desc)
	}
}

// RenderTable61 prints the latency table (Table 6-1).
func RenderTable61(w io.Writer) {
	fmt.Fprintf(w, "Table 6-1: Operation latencies (memory latency 2 or 6)\n")
	fmt.Fprint(w, machine.Describe(2))
}

// RenderTable63 prints Table 6-3.
func RenderTable63(w io.Writer, rows []Table63Row) {
	fmt.Fprintf(w, "Table 6-3: Frequency of SpD application by dependence type\n")
	fmt.Fprintf(w, "%-10s | %-17s | %-17s\n", "", "2 Cycle Memory", "6 Cycle Memory")
	fmt.Fprintf(w, "%-10s | %5s %5s %5s | %5s %5s %5s\n",
		"Program", "RAW", "WAR", "WAW", "RAW", "WAR", "WAW")
	fmt.Fprintln(w, strings.Repeat("-", 50))
	for _, r := range rows {
		if r.Fail != "" {
			fmt.Fprintf(w, "%-10s | FAIL(%s)\n", r.Program, r.Fail)
			continue
		}
		fmt.Fprintf(w, "%-10s | %5d %5d %5d | %5d %5d %5d\n",
			r.Program, r.RAW2, r.WAR2, r.WAW2, r.RAW6, r.WAR6, r.WAW6)
	}
}

// RenderFigure62 prints Figure 6-2 as a table of speedups over NAIVE.
func RenderFigure62(w io.Writer, rows []Fig62Row) {
	fmt.Fprintf(w, "Figure 6-2: Speedup over the NAIVE disambiguator, %d-FU machine\n", Fig62Width)
	fmt.Fprintf(w, "(speedup = cycles(NAIVE)/cycles(X) - 1)\n")
	for _, memLat := range MemLats {
		fmt.Fprintf(w, "\n%d Cycle Memory Latency\n", memLat)
		fmt.Fprintf(w, "%-10s %8s %8s %8s\n", "Program", "STATIC", "SPEC", "PERFECT")
		for _, r := range rows {
			if r.MemLat != memLat {
				continue
			}
			if r.Fail != "" {
				fmt.Fprintf(w, "%-10s FAIL(%s)\n", r.Program, r.Fail)
				continue
			}
			fmt.Fprintf(w, "%-10s %7.1f%% %7.1f%% %7.1f%%\n",
				r.Program, 100*r.Static, 100*r.Spec, 100*r.Perfect)
		}
	}
}

// RenderFigure63 prints Figure 6-3: SPEC over STATIC vs machine width.
func RenderFigure63(w io.Writer, rows []Fig63Row) {
	fmt.Fprintf(w, "Figure 6-3: Speedup of SPEC over STATIC (NRC benchmarks)\n")
	for _, memLat := range MemLats {
		fmt.Fprintf(w, "\n%d Cycle Memory Latency (speedup %% per machine width)\n", memLat)
		fmt.Fprintf(w, "%-10s", "Program")
		for wd := 1; wd <= MaxWidth; wd++ {
			fmt.Fprintf(w, " %6dFU", wd)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			if r.MemLat != memLat {
				continue
			}
			if r.Fail != "" {
				fmt.Fprintf(w, "%-10s FAIL(%s)\n", r.Program, r.Fail)
				continue
			}
			fmt.Fprintf(w, "%-10s", r.Program)
			for _, s := range r.Speedup {
				fmt.Fprintf(w, " %7.1f%%", 100*s)
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFigure64 prints Figure 6-4: code-size increase due to SpD.
func RenderFigure64(w io.Writer, rows []Fig64Row) {
	fmt.Fprintf(w, "Figure 6-4: Code size increase due to SpD (2-cycle memory)\n")
	fmt.Fprintf(w, "(operations, not VLIW instructions)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %9s\n", "Program", "before", "after", "increase")
	for _, r := range rows {
		if r.Fail != "" {
			fmt.Fprintf(w, "%-10s FAIL(%s)\n", r.Program, r.Fail)
			continue
		}
		fmt.Fprintf(w, "%-10s %8d %8d %8.1f%%\n",
			r.Program, r.BeforeOps, r.AfterOps, r.IncreasePct)
	}
}
