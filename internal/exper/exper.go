// Package exper regenerates every table and figure of the paper's evaluation
// (§6): Table 6-3 (SpD application frequency by dependence type), Figure 6-2
// (speedup of STATIC / SPEC / PERFECT over NAIVE on a 5-FU machine),
// Figure 6-3 (speedup of SPEC over STATIC as a function of machine width),
// and Figure 6-4 (code-size increase due to SpD).
//
// A Runner caches prepared programs and measurements so the experiments can
// share work: one timed simulation prices a program under the infinite
// machine and all eight widths at once.
package exper

import (
	"fmt"
	"sync"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/machine"
	"specdis/internal/spd"
)

// MaxWidth is the widest machine evaluated (the paper sweeps 1–8 FUs).
const MaxWidth = 8

// MemLats are the two memory latencies of Table 6-1.
var MemLats = []int{2, 6}

// Runner executes and caches experiment building blocks.
type Runner struct {
	Params     spd.Params
	Benchmarks []*bench.Benchmark

	mu       sync.Mutex
	prepared map[prepKey]*disamb.Prepared
	measured map[prepKey]*Measurement
}

type prepKey struct {
	bench  string
	kind   disamb.Kind
	memLat int
}

// Measurement is one program's cycle counts: Inf for the infinite machine
// and ByWidth[w-1] for w functional units.
type Measurement struct {
	Inf     int64
	ByWidth [MaxWidth]int64
}

// New returns a Runner over the full suite with default SpD parameters.
func New() *Runner {
	return &Runner{
		Params:     spd.DefaultParams(),
		Benchmarks: bench.All(),
		prepared:   map[prepKey]*disamb.Prepared{},
		measured:   map[prepKey]*Measurement{},
	}
}

// Prepared returns (building and caching) the program for one pipeline.
func (r *Runner) Prepared(b *bench.Benchmark, kind disamb.Kind, memLat int) (*disamb.Prepared, error) {
	key := prepKey{b.Name, kind, memLat}
	r.mu.Lock()
	p, ok := r.prepared[key]
	r.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := disamb.Prepare(b.Source, kind, memLat, r.Params)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/m%d: %w", b.Name, kind, memLat, err)
	}
	r.mu.Lock()
	r.prepared[key] = p
	r.mu.Unlock()
	return p, nil
}

// Measure returns (running and caching) the cycle counts for one pipeline
// under the infinite machine and every width at the given memory latency.
func (r *Runner) Measure(b *bench.Benchmark, kind disamb.Kind, memLat int) (*Measurement, error) {
	key := prepKey{b.Name, kind, memLat}
	r.mu.Lock()
	m, ok := r.measured[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	p, err := r.Prepared(b, kind, memLat)
	if err != nil {
		return nil, err
	}
	models := make([]machine.Model, 0, MaxWidth+1)
	models = append(models, machine.Infinite(memLat))
	for w := 1; w <= MaxWidth; w++ {
		models = append(models, machine.New(w, memLat))
	}
	res, err := disamb.Measure(p, models)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/m%d: %w", b.Name, kind, memLat, err)
	}
	m = &Measurement{Inf: res.Times[0]}
	copy(m.ByWidth[:], res.Times[1:])
	r.mu.Lock()
	r.measured[key] = m
	r.mu.Unlock()
	return m, nil
}

// speedup returns base/x − 1 (the paper's bar heights).
func speedup(base, x int64) float64 {
	if x == 0 {
		return 0
	}
	return float64(base)/float64(x) - 1
}

// ---- Table 6-3 ----------------------------------------------------------

// Table63Row is one benchmark's SpD application counts by dependence type
// for the two memory-latency models.
type Table63Row struct {
	Program          string
	RAW2, WAR2, WAW2 int
	RAW6, WAR6, WAW6 int
}

// Table63 reproduces Table 6-3.
func (r *Runner) Table63() ([]Table63Row, error) {
	var rows []Table63Row
	var total Table63Row
	total.Program = "TOTAL"
	for _, b := range r.Benchmarks {
		row := Table63Row{Program: b.Name}
		for _, memLat := range MemLats {
			p, err := r.Prepared(b, disamb.Spec, memLat)
			if err != nil {
				return nil, err
			}
			if memLat == 2 {
				row.RAW2, row.WAR2, row.WAW2 = p.SpD.RAW, p.SpD.WAR, p.SpD.WAW
			} else {
				row.RAW6, row.WAR6, row.WAW6 = p.SpD.RAW, p.SpD.WAR, p.SpD.WAW
			}
		}
		total.RAW2 += row.RAW2
		total.WAR2 += row.WAR2
		total.WAW2 += row.WAW2
		total.RAW6 += row.RAW6
		total.WAR6 += row.WAR6
		total.WAW6 += row.WAW6
		rows = append(rows, row)
	}
	rows = append(rows, total)
	return rows, nil
}

// ---- Figure 6-2 ----------------------------------------------------------

// Fig62Row is one benchmark's speedups over NAIVE on the 5-FU machine.
type Fig62Row struct {
	Program string
	MemLat  int
	Static  float64
	Spec    float64
	Perfect float64
}

// Fig62Width is the machine width used by Figure 6-2.
const Fig62Width = 5

// Figure62 reproduces Figure 6-2 for both memory latencies.
func (r *Runner) Figure62() ([]Fig62Row, error) {
	var rows []Fig62Row
	for _, memLat := range MemLats {
		for _, b := range r.Benchmarks {
			naive, err := r.Measure(b, disamb.Naive, memLat)
			if err != nil {
				return nil, err
			}
			row := Fig62Row{Program: b.Name, MemLat: memLat}
			base := naive.ByWidth[Fig62Width-1]
			for _, kp := range []struct {
				kind disamb.Kind
				out  *float64
			}{
				{disamb.Static, &row.Static},
				{disamb.Spec, &row.Spec},
				{disamb.Perfect, &row.Perfect},
			} {
				m, err := r.Measure(b, kp.kind, memLat)
				if err != nil {
					return nil, err
				}
				*kp.out = speedup(base, m.ByWidth[Fig62Width-1])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Figure 6-3 ----------------------------------------------------------

// Fig63Row is one NRC benchmark's SPEC-over-STATIC speedup per machine
// width, at one memory latency.
type Fig63Row struct {
	Program string
	MemLat  int
	Speedup [MaxWidth]float64 // index w-1 = width w
}

// Figure63 reproduces Figure 6-3 (NRC benchmarks only, per the paper).
func (r *Runner) Figure63() ([]Fig63Row, error) {
	var rows []Fig63Row
	for _, memLat := range MemLats {
		for _, b := range bench.NRC() {
			st, err := r.Measure(b, disamb.Static, memLat)
			if err != nil {
				return nil, err
			}
			sp, err := r.Measure(b, disamb.Spec, memLat)
			if err != nil {
				return nil, err
			}
			row := Fig63Row{Program: b.Name, MemLat: memLat}
			for w := 0; w < MaxWidth; w++ {
				row.Speedup[w] = speedup(st.ByWidth[w], sp.ByWidth[w])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---- Figure 6-4 ----------------------------------------------------------

// Fig64Row is one benchmark's code-size increase due to SpD, measured in
// operations (not VLIW instructions), for the 2-cycle memory model.
type Fig64Row struct {
	Program     string
	BeforeOps   int
	AfterOps    int
	IncreasePct float64
}

// Figure64 reproduces Figure 6-4.
func (r *Runner) Figure64() ([]Fig64Row, error) {
	var rows []Fig64Row
	for _, b := range r.Benchmarks {
		p, err := r.Prepared(b, disamb.Spec, 2)
		if err != nil {
			return nil, err
		}
		after := p.Prog.OpCount()
		row := Fig64Row{
			Program:   b.Name,
			BeforeOps: p.BaseOps,
			AfterOps:  after,
		}
		if p.BaseOps > 0 {
			row.IncreasePct = 100 * float64(after-p.BaseOps) / float64(p.BaseOps)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
