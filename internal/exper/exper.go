// Package exper regenerates every table and figure of the paper's evaluation
// (§6): Table 6-3 (SpD application frequency by dependence type), Figure 6-2
// (speedup of STATIC / SPEC / PERFECT over NAIVE on a 5-FU machine),
// Figure 6-3 (speedup of SPEC over STATIC as a function of machine width),
// and Figure 6-4 (code-size increase due to SpD).
//
// A Runner caches prepared programs and measurements so the experiments can
// share work: one timed simulation prices a program under the infinite
// machine and all eight widths at once, and — for the pipelines whose output
// does not depend on memory latency — under both memory latencies at once.
// Each experiment first fans its cells out over a bounded worker pool
// (Runner.Par); a singleflight layer deduplicates the cells the experiments
// have in common, so concurrent and repeated requests coalesce onto one
// computation. Results are byte-identical to a sequential run.
package exper

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"specdis/internal/bcode"
	"specdis/internal/bench"
	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/ir"
	"specdis/internal/machine"
	"specdis/internal/ncode"
	"specdis/internal/resilience"
	"specdis/internal/sim"
	"specdis/internal/spd"
	"specdis/internal/store"
	"specdis/internal/trace"
)

// MaxWidth is the widest machine evaluated (the paper sweeps 1–8 FUs).
const MaxWidth = 8

// MemLats are the two memory latencies of Table 6-1.
var MemLats = []int{2, 6}

// Runner executes and caches experiment building blocks.
type Runner struct {
	Params     spd.Params
	Benchmarks []*bench.Benchmark

	// Par bounds the worker pool experiments use to evaluate independent
	// (benchmark, pipeline, latency) cells concurrently: 0 means
	// GOMAXPROCS, 1 runs fully sequentially. Output is byte-identical at
	// every setting; see TestParallelDeterminism.
	Par int

	// TraceReplay selects the trace-capture & replay simulation backend for
	// timed measurements (the default from New; `spdbench -trace=interp`
	// turns it off): each cell's program is interpreted once, recording an
	// execution trace, and every machine model is priced by replaying the
	// trace against its schedules. Reports are byte-identical to the
	// interpreting backend at every Par setting; see
	// TestTraceReplayEquivalence.
	TraceReplay bool

	// Verify passes the static verifier down to every preparation
	// (disamb.Options.Verify): each pipeline stage of each cell is checked
	// for structural and speculation-safety violations, failing the cell on
	// the first finding. Debug mode (`spdbench -verify`).
	Verify bool

	// Exec selects the execution backend every interpretation uses. The
	// zero value is the bytecode engine; New selects the closure-threaded
	// native tier — the CLIs' default (`spdbench -exec=bcode` and
	// `-exec=tree` walk back down the ladder). Reports are byte-identical
	// under all three backends.
	Exec sim.ExecMode

	// TierUp is the adaptive-tiering hot threshold under the native backend
	// (sim.Runner.TierUp): every tree starts on the bytecode rung and is
	// promoted to the native tier at its TierUp-th execution of a run, so
	// cold trees never pay native compilation. 0 (and any value <= 0)
	// compiles eagerly. New sets DefaultTierUp.
	TierUp int64

	// Fuel bounds every interpretation's dynamic operation count (0 =
	// sim.DefaultMaxOps): a nonterminating cell fails with a typed
	// resilience.ErrFuelExhausted instead of hanging the grid.
	Fuel int64

	// Ctx, when non-nil, cancels in-flight cells on deadline expiry or
	// cancellation with typed resilience.ErrDeadline failures
	// (`spdbench -deadline`).
	Ctx context.Context

	// Inject is the seeded fault-injection plan (nil: no injection). Faults
	// are dealt per cell by canonical name; every failure they manufacture
	// must either be recovered by a degradation rung or surface as a
	// structured CellError in Failures — never kill the process.
	Inject *resilience.FaultPlan

	// Store, when non-nil, is the persistent content-addressed artifact
	// store (`spdbench -store=DIR`): prepare summaries, traces, priced
	// measurement cells, compiled bytecode and native-tier metadata are
	// served from it when present and persisted when computed, so repeat
	// sweeps start warm. Bypassed under Verify and Inject; see store.go.
	Store *store.Store

	base   group[string, *ir.Program]
	prep   group[prepKey, *disamb.Prepared]
	meas   group[prepKey, *measCell]
	traces group[prepKey, *trace.Trace]
	sums   group[prepKey, *store.PrepSummary]

	failMu sync.Mutex
	failed map[string]*resilience.CellError // first failure per cell name

	nPrepares       atomic.Int64
	nMeasures       atomic.Int64
	nSimOps         atomic.Int64
	nTraceReqs      atomic.Int64
	nTraceCaptures  atomic.Int64
	nTraceEvents    atomic.Int64
	nTraceBytes     atomic.Int64
	nReplayCells    atomic.Int64
	nInterpCells    atomic.Int64
	nCellFails      atomic.Int64
	nPanics         atomic.Int64
	nFuel           atomic.Int64
	nDeadline       atomic.Int64
	nBCodeFallback  atomic.Int64
	nNCodeFallback  atomic.Int64
	nRecapture      atomic.Int64
	nInterpFallback atomic.Int64
	nInjected       atomic.Int64
	nStorePreps     atomic.Int64
	nStoreMeasures  atomic.Int64
	nStoreTraces    atomic.Int64
	bcodeCtrs       bcode.Counters

	// The compiled-code caches are shared across every cell of the sweep:
	// content addressing (ir.AppendExecKey) makes them safe across the
	// private program clones each pipeline mutates, so identical trees —
	// the common case, since most pipelines only touch arcs — compile once
	// per runner instead of once per cell.
	cacheOnce sync.Once
	bcCache   *bcode.Cache
	ncCache   *ncode.Cache
}

// caches returns the runner's shared compiled-code caches, creating them on
// first use wired to the runner's counters — and, when the persistent store
// is enabled, backed by it, so compiled bytecode and native-tier metadata
// survive the process.
func (r *Runner) caches() (*bcode.Cache, *ncode.Cache) {
	r.cacheOnce.Do(func() {
		r.bcCache = bcode.NewCache(&r.bcodeCtrs)
		r.ncCache = ncode.NewCache(&r.bcodeCtrs)
		if r.storeOK() {
			r.bcCache.SetBacking(store.BCodeBacking(r.Store))
			r.ncCache.SetBacking(store.NCodeBacking(r.Store))
		}
	})
	return r.bcCache, r.ncCache
}

// UseCaches makes the runner share pre-built compiled-code caches instead of
// creating private ones — the service configuration, where one bounded
// bcode/ncode cache pair (with its own server-level counters and store
// backing) serves every request's runner. Must be called before the runner
// executes any cell; it is a no-op if the private caches already exist. The
// caches' own counters keep compile/hit/eviction totals at the server level,
// while the runner's per-request Stats counters stay isolated.
func (r *Runner) UseCaches(bc *bcode.Cache, nc *ncode.Cache) {
	r.cacheOnce.Do(func() {
		r.bcCache = bc
		r.ncCache = nc
	})
}

type prepKey struct {
	bench  string
	kind   disamb.Kind
	memLat int // 0 = canonical cell shared by all latencies
}

// measCell is one timed run's result: a Measurement per priced memory
// latency (parallel to the lats the run was keyed under).
type measCell struct {
	byLat []*Measurement
}

// Measurement is one program's cycle counts: Inf for the infinite machine
// and ByWidth[w-1] for w functional units.
type Measurement struct {
	Inf     int64
	ByWidth [MaxWidth]int64
	// Ops is the number of dynamic operations the timed simulation
	// executed (including squashed speculative ones).
	Ops int64
}

// DefaultTierUp is New's adaptive-tiering threshold: a tree's 32nd execution
// within a run promotes it from the bytecode rung to the native tier. Low
// enough that every hot loop tree promotes almost immediately, high enough
// that straight-line setup trees executed a handful of times never pay
// native compilation. See BenchmarkTierUpThreshold for the sweep behind it.
const DefaultTierUp = 32

// New returns a Runner over the full suite with default SpD parameters, the
// parallel cell engine enabled (Par = GOMAXPROCS), the trace-replay
// simulation backend, and the native execution tier under profile-guided
// adaptive tiering (TierUp = DefaultTierUp).
func New() *Runner {
	return &Runner{
		Params:      spd.DefaultParams(),
		Benchmarks:  bench.All(),
		TraceReplay: true,
		Exec:        sim.ExecNative,
		TierUp:      DefaultTierUp,
	}
}

// latSlot returns memLat's index in MemLats.
func latSlot(memLat int) (int, bool) {
	for i, l := range MemLats {
		if l == memLat {
			return i, true
		}
	}
	return 0, false
}

// Prepared returns (building and caching) the program for one pipeline.
//
// Pipelines that are not latency-sensitive share a single canonical cell
// across all memory latencies: their transforms never read the latency, and
// profiling results are latency-invariant (the simulator executes in Seq
// order under every semantic model), so preparing per latency would only
// duplicate work.
func (r *Runner) Prepared(b *bench.Benchmark, kind disamb.Kind, memLat int) (*disamb.Prepared, error) {
	key := prepKey{b.Name, kind, memLat}
	if !kind.LatencySensitive() {
		key.memLat = 0
		memLat = MemLats[0]
	}
	return r.prep.Do(key, func() (*disamb.Prepared, error) {
		base, err := r.compiled(b)
		if err != nil {
			return nil, err
		}
		r.nPrepares.Add(1)
		bcc, ncc := r.caches()
		attempt := func(mode sim.ExecMode) (p *disamb.Prepared, err error) {
			// The preparation is a cell boundary: a panic anywhere in the
			// pipeline (or its profiling interpretation) is recovered into a
			// structured CellError instead of killing the grid.
			defer resilience.Recover(&err, b.Name, kind.String(), key.memLat, "prepare")
			return disamb.PrepareOpts(b.Source, disamb.Options{
				Kind: kind, MemLat: memLat, SpD: r.Params,
				// All of a benchmark's cells start from private clones of one
				// compilation; each pipeline mutates only its own clone.
				Prog: base.Clone(),
				// Under the replay backend, PERFECT's profiling run doubles as
				// the capture run for the whole latency-insensitive trace class
				// (see traceFor) at no extra interpretation.
				Record: r.TraceReplay && kind == disamb.Perfect,
				Verify: r.Verify,
				MaxOps: r.Fuel, Ctx: r.Ctx,
				Exec: mode, TierUp: r.TierUp, ExecCounters: &r.bcodeCtrs,
				BCode: bcc, NCode: ncc,
			})
		}
		p, err := attempt(r.Exec)
		mode := r.Exec
		for err != nil && resilience.Classify(err).Retryable() {
			// Degradation ladder: a compiled-engine crash walks one rung down
			// (native → bytecode → tree); the retried preparation keeps its
			// rung's backend for every later run of this cell. The first error
			// is kept when every rung fails: it names the root cause on the
			// primary backend.
			fb, ok := fallbackOf(mode)
			if !ok {
				break
			}
			r.noteFallback(mode)
			if p2, err2 := attempt(fb); err2 == nil {
				return p2, nil
			} else if !resilience.Classify(err2).Retryable() {
				break
			}
			mode = fb
		}
		if err != nil {
			return nil, r.failCell(err, b.Name, kind, key.memLat, "prepare")
		}
		return p, nil
	})
}

// compiled returns (compiling and caching) a benchmark's base program. Every
// preparation cell of the benchmark starts from a private Clone of it, so the
// source is lexed and lowered once per benchmark instead of once per cell.
func (r *Runner) compiled(b *bench.Benchmark) (*ir.Program, error) {
	return r.base.Do(b.Name, func() (*ir.Program, error) {
		p, err := compile.CompileOpts(b.Source, compile.Options{Verify: r.Verify})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		return p, nil
	})
}

// traceFor returns (capturing and caching) the execution trace replayed for
// one measurement cell.
//
// Traces depend only on what a cell's program *executes*, never on arcs or
// schedules, so all latency-insensitive pipelines of a benchmark share one
// trace: NAIVE, STATIC and PERFECT run the identical operation stream (their
// disambiguators touch arcs only). That class is keyed under PERFECT, whose
// preparation already interprets the program for its profile — recording
// there makes the shared trace free (disamb.Options.Record). SPEC's
// transformed programs get their own per-latency traces, captured by one
// interpretation each (disamb.Capture). TestTraceClassShared pins the
// class-sharing invariant.
func (r *Runner) traceFor(b *bench.Benchmark, kind disamb.Kind, memLat int) (*trace.Trace, error) {
	key := prepKey{b.Name, kind, memLat}
	if !kind.LatencySensitive() {
		key.kind, key.memLat = disamb.Perfect, 0
	}
	r.nTraceReqs.Add(1)
	return r.traces.Do(key, func() (*trace.Trace, error) {
		var skey store.Key
		if r.storeOK() {
			skey = r.artifactKey(store.KindTrace, b, key.kind, key.memLat, nil)
			if tr, ok := store.GetTrace(r.Store, skey); ok {
				// Warm hit: the persisted trace replaces the capture run.
				// Event and byte totals still accumulate so trace-layer
				// stats describe the same workload cold and warm.
				r.nStoreTraces.Add(1)
				r.nTraceEvents.Add(tr.Events)
				r.nTraceBytes.Add(int64(tr.Size()))
				return tr, nil
			}
		}
		p, err := r.Prepared(b, key.kind, memLat)
		if err != nil {
			return nil, err
		}
		r.nTraceCaptures.Add(1)
		tr, err := func() (tr *trace.Trace, err error) {
			// The capture run is a cell boundary too: contain crashes.
			defer resilience.Recover(&err, b.Name, key.kind.String(), key.memLat, "capture")
			return disamb.Capture(p)
		}()
		if err != nil {
			return nil, r.failCell(err, b.Name, key.kind, key.memLat, "capture")
		}
		r.nTraceEvents.Add(tr.Events)
		r.nTraceBytes.Add(int64(tr.Size()))
		if r.storeOK() {
			store.PutTrace(r.Store, skey, tr)
		}
		return tr, nil
	})
}

// Measure returns (running and caching) the cycle counts for one pipeline
// under the infinite machine and every width at the given memory latency.
//
// For latency-insensitive pipelines the two standard latencies are priced by
// one merged 18-model run over the shared prepared program (timing plans are
// pure pricing — the executed operations are identical), halving the number
// of simulations.
func (r *Runner) Measure(b *bench.Benchmark, kind disamb.Kind, memLat int) (*Measurement, error) {
	key := prepKey{b.Name, kind, memLat}
	lats := []int{memLat}
	slot := 0
	if !kind.LatencySensitive() {
		if s, ok := latSlot(memLat); ok {
			key.memLat = 0
			lats = MemLats
			slot = s
		}
	}
	cell, err := r.meas.Do(key, func() (*measCell, error) {
		var skey store.Key
		if r.storeOK() {
			skey = r.artifactKey(store.KindMeas, b, kind, key.memLat, lats)
			if mc, ok := store.GetMeas(r.Store, skey); ok {
				if cell := cellFromArtifact(mc, lats); cell != nil {
					// Warm hit: the stored cycle counts stand in for the whole
					// timed simulation. Ops still feeds SimOps so the pinned
					// sim_ops total is identical cold and warm.
					r.nStoreMeasures.Add(1)
					r.nSimOps.Add(mc.Ops)
					return cell, nil
				}
			}
		}
		p, err := r.Prepared(b, kind, memLat)
		if err != nil {
			return nil, err // registered by Prepared at its origin
		}
		models := make([]machine.Model, 0, len(lats)*(MaxWidth+1))
		for _, lat := range lats {
			models = append(models, machine.Infinite(lat))
			for w := 1; w <= MaxWidth; w++ {
				models = append(models, machine.New(w, lat))
			}
		}
		r.nMeasures.Add(1)
		res, err := r.measureCell(b, kind, key.memLat, memLat, p, models)
		if err != nil {
			return nil, r.failCell(err, b.Name, kind, key.memLat, "measure")
		}
		r.nSimOps.Add(res.Ops)
		cell := &measCell{byLat: make([]*Measurement, len(lats))}
		for li := range lats {
			m := &Measurement{Inf: res.Times[li*(MaxWidth+1)], Ops: res.Ops}
			copy(m.ByWidth[:], res.Times[li*(MaxWidth+1)+1:(li+1)*(MaxWidth+1)])
			cell.byLat[li] = m
		}
		if r.storeOK() {
			store.PutMeas(r.Store, skey, cellToArtifact(cell, lats))
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	return cell.byLat[slot], nil
}

// PrepareAll warms every (benchmark, pipeline, memory latency) prepare cell
// of the evaluation grid through the worker pool and returns the first error
// in grid order.
func (r *Runner) PrepareAll() error {
	var cells []warmCell
	for _, b := range r.Benchmarks {
		for _, k := range disamb.Kinds {
			for _, memLat := range MemLats {
				cells = append(cells, warmCell{bench: b, kind: k, memLat: memLat})
			}
		}
	}
	r.warm(cells)
	for _, c := range cells {
		if _, err := r.Prepared(c.bench, c.kind, c.memLat); err != nil {
			return err
		}
	}
	return nil
}

// speedup returns base/x − 1 (the paper's bar heights).
func speedup(base, x int64) float64 {
	if x == 0 {
		return 0
	}
	return float64(base)/float64(x) - 1
}

// ---- Table 6-3 ----------------------------------------------------------

// Table63Row is one benchmark's SpD application counts by dependence type
// for the two memory-latency models.
type Table63Row struct {
	Program          string
	RAW2, WAR2, WAW2 int
	RAW6, WAR6, WAW6 int
	// Fail is the failure class of the row's first failed cell ("" = clean).
	// Failed rows carry zero counts and are excluded from the TOTAL row.
	Fail string
}

// Table63 reproduces Table 6-3.
func (r *Runner) Table63() ([]Table63Row, error) {
	var rows []Table63Row
	err := r.streamTable63(func(row Table63Row) { rows = append(rows, row) })
	return rows, err
}

// streamTable63 computes Table 6-3 row by row, emitting each row as soon as
// its cells resolve. The cells warm asynchronously on the work-stealing
// pool; the assembly loop coalesces onto in-flight computations through the
// singleflight layer, so emission order — and therefore rendered output — is
// identical to a sequential run.
//
// Row data comes from prepare summaries (Runner.Summary), not full
// preparations: on a warm store the table renders without compiling
// anything.
func (r *Runner) streamTable63(emit func(Table63Row)) error {
	var cells []warmCell
	for _, b := range r.Benchmarks {
		for _, memLat := range MemLats {
			cells = append(cells, warmCell{bench: b, kind: disamb.Spec, memLat: memLat, task: taskSummary})
		}
	}
	wait := r.warmAsync(cells)
	defer wait()

	var total Table63Row
	total.Program = "TOTAL"
	for _, b := range r.Benchmarks {
		row := Table63Row{Program: b.Name}
		for _, memLat := range MemLats {
			s, err := r.Summary(b, disamb.Spec, memLat)
			if err != nil {
				// Record the failure on the row and keep going: one broken
				// cell must not take down the rest of the table.
				if row.Fail == "" {
					row.Fail = failNote(err)
				}
				continue
			}
			if memLat == 2 {
				row.RAW2, row.WAR2, row.WAW2 = s.RAW, s.WAR, s.WAW
			} else {
				row.RAW6, row.WAR6, row.WAW6 = s.RAW, s.WAR, s.WAW
			}
		}
		if row.Fail != "" {
			row.RAW2, row.WAR2, row.WAW2 = 0, 0, 0
			row.RAW6, row.WAR6, row.WAW6 = 0, 0, 0
			emit(row)
			continue
		}
		total.RAW2 += row.RAW2
		total.WAR2 += row.WAR2
		total.WAW2 += row.WAW2
		total.RAW6 += row.RAW6
		total.WAR6 += row.WAR6
		total.WAW6 += row.WAW6
		emit(row)
	}
	emit(total)
	return nil
}

// ---- Figure 6-2 ----------------------------------------------------------

// Fig62Row is one benchmark's speedups over NAIVE on the 5-FU machine.
type Fig62Row struct {
	Program string
	MemLat  int
	Static  float64
	Spec    float64
	Perfect float64
	// Fail is the failure class of the row's first failed cell ("" = clean);
	// a failed row's speedups are zero.
	Fail string
}

// Fig62Width is the machine width used by Figure 6-2.
const Fig62Width = 5

// Figure62 reproduces Figure 6-2 for both memory latencies.
func (r *Runner) Figure62() ([]Fig62Row, error) {
	var rows []Fig62Row
	err := r.streamFigure62(func(row Fig62Row) { rows = append(rows, row) })
	return rows, err
}

// streamFigure62 computes Figure 6-2 row by row; see streamTable63 for the
// streaming contract.
func (r *Runner) streamFigure62(emit func(Fig62Row)) error {
	var cells []warmCell
	for _, b := range r.Benchmarks {
		for _, kind := range disamb.Kinds {
			for _, memLat := range MemLats {
				cells = append(cells, warmCell{bench: b, kind: kind, memLat: memLat, task: taskMeasure})
			}
		}
	}
	wait := r.warmAsync(cells)
	defer wait()

	for _, memLat := range MemLats {
		for _, b := range r.Benchmarks {
			row := Fig62Row{Program: b.Name, MemLat: memLat}
			naive, err := r.Measure(b, disamb.Naive, memLat)
			if err != nil {
				// The NAIVE baseline is gone: the whole row fails, but the
				// rest of the figure survives.
				row.Fail = failNote(err)
				emit(row)
				continue
			}
			base := naive.ByWidth[Fig62Width-1]
			for _, kp := range []struct {
				kind disamb.Kind
				out  *float64
			}{
				{disamb.Static, &row.Static},
				{disamb.Spec, &row.Spec},
				{disamb.Perfect, &row.Perfect},
			} {
				m, err := r.Measure(b, kp.kind, memLat)
				if err != nil {
					if row.Fail == "" {
						row.Fail = failNote(err)
					}
					continue
				}
				*kp.out = speedup(base, m.ByWidth[Fig62Width-1])
			}
			if row.Fail != "" {
				row.Static, row.Spec, row.Perfect = 0, 0, 0
			}
			emit(row)
		}
	}
	return nil
}

// ---- Figure 6-3 ----------------------------------------------------------

// Fig63Row is one NRC benchmark's SPEC-over-STATIC speedup per machine
// width, at one memory latency.
type Fig63Row struct {
	Program string
	MemLat  int
	Speedup [MaxWidth]float64 // index w-1 = width w
	// Fail is the failure class of the row's first failed cell ("" = clean);
	// a failed row's speedups are zero.
	Fail string
}

// Figure63 reproduces Figure 6-3 (NRC benchmarks only, per the paper).
func (r *Runner) Figure63() ([]Fig63Row, error) {
	var rows []Fig63Row
	err := r.streamFigure63(func(row Fig63Row) { rows = append(rows, row) })
	return rows, err
}

// streamFigure63 computes Figure 6-3 row by row; see streamTable63 for the
// streaming contract.
func (r *Runner) streamFigure63(emit func(Fig63Row)) error {
	var cells []warmCell
	for _, b := range bench.NRC() {
		for _, kind := range []disamb.Kind{disamb.Static, disamb.Spec} {
			for _, memLat := range MemLats {
				cells = append(cells, warmCell{bench: b, kind: kind, memLat: memLat, task: taskMeasure})
			}
		}
	}
	wait := r.warmAsync(cells)
	defer wait()

	for _, memLat := range MemLats {
		for _, b := range bench.NRC() {
			row := Fig63Row{Program: b.Name, MemLat: memLat}
			st, err := r.Measure(b, disamb.Static, memLat)
			if err == nil {
				var sp *Measurement
				sp, err = r.Measure(b, disamb.Spec, memLat)
				if err == nil {
					for w := 0; w < MaxWidth; w++ {
						row.Speedup[w] = speedup(st.ByWidth[w], sp.ByWidth[w])
					}
				}
			}
			if err != nil {
				row.Fail = failNote(err)
				row.Speedup = [MaxWidth]float64{}
			}
			emit(row)
		}
	}
	return nil
}

// ---- Figure 6-4 ----------------------------------------------------------

// Fig64Row is one benchmark's code-size increase due to SpD, measured in
// operations (not VLIW instructions), for the 2-cycle memory model.
type Fig64Row struct {
	Program     string
	BeforeOps   int
	AfterOps    int
	IncreasePct float64
	// Fail is the failure class of the row's failed prepare cell ("" =
	// clean); a failed row's counts are zero.
	Fail string
}

// Figure64 reproduces Figure 6-4.
func (r *Runner) Figure64() ([]Fig64Row, error) {
	var rows []Fig64Row
	err := r.streamFigure64(func(row Fig64Row) { rows = append(rows, row) })
	return rows, err
}

// streamFigure64 computes Figure 6-4 row by row; see streamTable63 for the
// streaming contract. Like Table 6-3, rows come from prepare summaries, so a
// warm store renders the figure without compiling anything.
func (r *Runner) streamFigure64(emit func(Fig64Row)) error {
	var cells []warmCell
	for _, b := range r.Benchmarks {
		cells = append(cells, warmCell{bench: b, kind: disamb.Spec, memLat: 2, task: taskSummary})
	}
	wait := r.warmAsync(cells)
	defer wait()

	for _, b := range r.Benchmarks {
		s, err := r.Summary(b, disamb.Spec, 2)
		if err != nil {
			emit(Fig64Row{Program: b.Name, Fail: failNote(err)})
			continue
		}
		row := Fig64Row{
			Program:   b.Name,
			BeforeOps: s.BaseOps,
			AfterOps:  s.AfterOps,
		}
		if s.BaseOps > 0 {
			row.IncreasePct = 100 * float64(s.AfterOps-s.BaseOps) / float64(s.BaseOps)
		}
		emit(row)
	}
	return nil
}
