package exper_test

import (
	"strings"
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/exper"
)

// renderAll runs every §6 experiment on r and renders the full report.
func renderAll(t testing.TB, r *exper.Runner) string {
	t.Helper()
	var sb strings.Builder
	rows63, err := r.Table63()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderTable63(&sb, rows63)
	rows62, err := r.Figure62()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure62(&sb, rows62)
	rowsF63, err := r.Figure63()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure63(&sb, rowsF63)
	rows64, err := r.Figure64()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure64(&sb, rows64)
	return sb.String()
}

// TestParallelDeterminism locks in the parallel engine's core guarantee:
// with the worker pool at any width, the rendered Table 6-3 and Figures
// 6-2/6-3/6-4 are byte-identical to a fully sequential run, and the engine
// performs exactly the same deduplicated work. Run under -race this also
// exercises the singleflight layer for data races.
func TestParallelDeterminism(t *testing.T) {
	seq := exper.New()
	seq.Par = 1
	par := exper.New()
	par.Par = 4

	want := renderAll(t, seq)
	got := renderAll(t, par)
	if got != want {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}

	if seq.Stats() != par.Stats() {
		t.Errorf("work counters differ: sequential %+v, parallel %+v", seq.Stats(), par.Stats())
	}
}

// TestPrepareAllWarmsEveryCell checks PrepareAll builds each distinct
// prepare cell exactly once: one canonical cell per latency-insensitive
// pipeline, one per latency for SPEC.
func TestPrepareAllWarmsEveryCell(t *testing.T) {
	r := exper.New()
	r.Par = 4
	if err := r.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	perBench := 0
	for _, k := range disamb.Kinds {
		if k.LatencySensitive() {
			perBench += len(exper.MemLats)
		} else {
			perBench++
		}
	}
	want := int64(perBench * len(r.Benchmarks))
	if got := r.Stats().Prepares; got != want {
		t.Errorf("PrepareAll ran %d prepares, want %d", got, want)
	}
	if err := r.PrepareAll(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Prepares; got != want {
		t.Errorf("second PrepareAll re-ran cells: %d prepares, want %d", got, want)
	}
}

// BenchmarkPrepareAll measures the full prepare grid (compile + profile +
// transform for every benchmark and pipeline), the front half of the
// evaluation's cost.
func BenchmarkPrepareAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exper.New()
		if err := r.PrepareAll(); err != nil {
			b.Fatal(err)
		}
	}
}
