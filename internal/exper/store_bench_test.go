package exper_test

import (
	"testing"

	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/store"
)

// BenchmarkColdVsWarmCell prices one full measurement cell (prepare,
// capture, replay all 18 machine models) cold against the same cell served
// from a warm artifact store — the store's whole value proposition in one
// number.
func BenchmarkColdVsWarmCell(b *testing.B) {
	bm := exper.New().Benchmarks[0]
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := exper.New()
			r.Par = 1
			if _, err := r.Measure(bm, disamb.Spec, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		s, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		seed := exper.New()
		seed.Par = 1
		seed.Store = s
		if _, err := seed.Measure(bm, disamb.Spec, 2); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, err := store.Open(dir) // fresh handle: no in-memory front
			if err != nil {
				b.Fatal(err)
			}
			r := exper.New()
			r.Par = 1
			r.Store = w
			if _, err := r.Measure(bm, disamb.Spec, 2); err != nil {
				b.Fatal(err)
			}
			if st := r.Stats(); st.Measures != 0 {
				b.Fatal("warm cell was recomputed")
			}
		}
	})
}

// BenchmarkWarmSweep times the full evaluation grid served entirely from a
// warm store — the spdbench -store second-run path.
func BenchmarkWarmSweep(b *testing.B) {
	dir := b.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	seed := exper.New()
	seed.Store = s
	_ = renderAll(b, seed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		r := exper.New()
		r.Store = w
		_ = renderAll(b, r)
	}
}
