package exper_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specdis/internal/exper"
	"specdis/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWarmRunServesEverythingFromStore is the tentpole invariant: after one
// cold populating run, a fresh runner over the same store directory renders
// every report byte-identically while compiling zero trees, capturing zero
// traces, and running zero preparations or measurements.
func TestWarmRunServesEverythingFromStore(t *testing.T) {
	dir := t.TempDir()

	plain := exper.New()
	want := renderAll(t, plain)

	cold := exper.New()
	cold.Store = openStore(t, dir)
	if got := renderAll(t, cold); got != want {
		t.Fatal("cold -store output differs from storeless output")
	}
	if st := cold.StoreStats(); st.Puts == 0 {
		t.Fatal("cold run persisted nothing")
	}

	warm := exper.New()
	warm.Store = openStore(t, dir) // fresh handle: nothing in memory
	if got := renderAll(t, warm); got != want {
		t.Fatal("warm output differs from cold output")
	}
	st := warm.Stats()
	if st.Prepares != 0 || st.Measures != 0 || st.TraceCaptures != 0 || st.BCodeCompiled != 0 {
		t.Errorf("warm run did cold work: prepares=%d measures=%d captures=%d compiled=%d",
			st.Prepares, st.Measures, st.TraceCaptures, st.BCodeCompiled)
	}
	if st.StorePreps == 0 || st.StoreMeasures == 0 {
		t.Errorf("warm run not served from store: %+v", st)
	}
	// SimOps is the pinned simulation-work total; the store must preserve it
	// so warm and cold runs report identical work.
	if cold.Stats().SimOps != st.SimOps {
		t.Errorf("warm SimOps %d != cold SimOps %d", st.SimOps, cold.Stats().SimOps)
	}
	if ss := warm.StoreStats(); ss.Misses != 0 || ss.Puts != 0 {
		t.Errorf("warm run missed or wrote: %+v", ss)
	}
}

// TestCorruptStoreDegradesToRecompute flips a byte in every persisted
// artifact, then requires a fresh runner to (a) render byte-identical
// reports anyway and (b) repair the store so the following run is warm
// again. Corruption may cost recomputes, never correctness.
func TestCorruptStoreDegradesToRecompute(t *testing.T) {
	dir := t.TempDir()
	cold := exper.New()
	cold.Store = openStore(t, dir)
	want := renderAll(t, cold)

	corrupted := 0
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".spda") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0x20
		corrupted++
		return os.WriteFile(p, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("nothing to corrupt")
	}

	repair := exper.New()
	repair.Store = openStore(t, dir)
	if got := renderAll(t, repair); got != want {
		t.Fatal("corrupted store changed report bytes")
	}
	rs := repair.StoreStats()
	if rs.CorruptDropped == 0 {
		t.Errorf("no corruption detected: %+v", rs)
	}
	if st := repair.Stats(); st.Prepares == 0 || st.Measures == 0 {
		t.Errorf("corrupt artifacts were served instead of recomputed: %+v", st)
	}

	// The recomputing run re-put every artifact: warm again.
	warm := exper.New()
	warm.Store = openStore(t, dir)
	if got := renderAll(t, warm); got != want {
		t.Fatal("post-repair output differs")
	}
	if st := warm.Stats(); st.Prepares != 0 || st.Measures != 0 || st.TraceCaptures != 0 {
		t.Errorf("store not repaired; warm run did cold work: %+v", st)
	}
}

// TestWorkStealingDeterminism pins the scheduler guarantee across pool
// widths and store modes: every (par, store) combination renders the same
// bytes, and equal-width runs perform identical deduplicated work.
func TestWorkStealingDeterminism(t *testing.T) {
	seq := exper.New()
	seq.Par = 1
	want := renderAll(t, seq)

	for _, par := range []int{2, 8} {
		r := exper.New()
		r.Par = par
		if got := renderAll(t, r); got != want {
			t.Errorf("par=%d output differs from sequential", par)
		}
		if r.Stats() != seq.Stats() {
			t.Errorf("par=%d work counters differ: %+v vs %+v", par, r.Stats(), seq.Stats())
		}
	}

	dir := t.TempDir()
	coldStats := make([]exper.Stats, 0, 3)
	for _, par := range []int{1, 2, 8} {
		r := exper.New()
		r.Par = par
		r.Store = openStore(t, filepath.Join(dir, "cold", string(rune('0'+par))))
		if got := renderAll(t, r); got != want {
			t.Errorf("cold store par=%d output differs", par)
		}
		coldStats = append(coldStats, r.Stats())

		w := exper.New()
		w.Par = par
		w.Store = r.Store
		if got := renderAll(t, w); got != want {
			t.Errorf("warm store par=%d output differs", par)
		}
	}
	for i := 1; i < len(coldStats); i++ {
		if coldStats[i] != coldStats[0] {
			t.Errorf("cold work counters differ across par: %+v vs %+v", coldStats[i], coldStats[0])
		}
	}
}

// TestStreamingMatchesBatch pins byte-identity between the streaming
// renderers (what spdbench prints) and the batch renderers over the same
// experiment (what the older API and the tests consume).
func TestStreamingMatchesBatch(t *testing.T) {
	batch := exper.New()
	var want strings.Builder
	rows63, err := batch.Table63()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderTable63(&want, rows63)
	rows62, err := batch.Figure62()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure62(&want, rows62)
	rowsF63, err := batch.Figure63()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure63(&want, rowsF63)
	rows64, err := batch.Figure64()
	if err != nil {
		t.Fatal(err)
	}
	exper.RenderFigure64(&want, rows64)

	stream := exper.New()
	var got strings.Builder
	for _, fn := range []func(*strings.Builder) error{
		func(w *strings.Builder) error { return stream.StreamTable63(w) },
		func(w *strings.Builder) error { return stream.StreamFigure62(w) },
		func(w *strings.Builder) error { return stream.StreamFigure63(w) },
		func(w *strings.Builder) error { return stream.StreamFigure64(w) },
	} {
		if err := fn(&got); err != nil {
			t.Fatal(err)
		}
	}
	if got.String() != want.String() {
		t.Fatalf("streaming output differs from batch:\n--- batch ---\n%s\n--- streaming ---\n%s", want.String(), got.String())
	}
}

// TestStoreBypassedUnderVerifyAndInject pins the enablement contract: a
// verifying or fault-injected runner must neither read nor write the store
// (verification must re-check everything; injected faults must fire and
// their corrupted results must never persist).
func TestStoreBypassedUnderVerify(t *testing.T) {
	dir := t.TempDir()
	cold := exper.New()
	cold.Store = openStore(t, dir)
	_ = renderAll(t, cold)

	v := exper.New()
	v.Verify = true
	v.Store = openStore(t, dir)
	_ = renderAll(t, v)
	if ss := v.StoreStats(); ss.Hits != 0 || ss.Puts != 0 {
		t.Errorf("verifying runner touched the store: %+v", ss)
	}
	if st := v.Stats(); st.StorePreps != 0 || st.StoreMeasures != 0 || st.StoreTraces != 0 {
		t.Errorf("verifying runner served cells from store: %+v", st)
	}
}
