package exper

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"specdis/internal/bench"
	"specdis/internal/disamb"
)

// group is a singleflight-style memoizing call group: the first Do for a key
// runs fn; concurrent Do calls for the same key wait for that one in-flight
// computation; later calls return the cached result (or error) immediately.
// The zero value is ready to use.
type group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*groupCall[V]
}

type groupCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the value for key, computing it with fn exactly once across all
// concurrent and future callers.
func (g *group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[K]*groupCall[V]{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &groupCall[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

// Stats are cumulative counters of the work a Runner has actually performed
// (deduplicated cells, not requests). Every counter is maintained with
// atomics and Stats may be called at any time — including from other
// goroutines while the worker pool is still warming cells; see
// TestStatsWhileWarming. The snapshot is monotonic per counter but not a
// single atomic cut across counters.
type Stats struct {
	// Prepares counts distinct compile+transform pipeline runs.
	Prepares int64
	// Measures counts distinct timed measurement cells (one cell prices all
	// of its machine models at once). ReplayCells + InterpCells == Measures
	// once the runner is idle.
	Measures int64
	// SimOps counts dynamic operations priced across all measurement cells
	// — operations interpreted (interp backend) or replayed from a trace
	// (replay backend). The two backends report identical totals.
	SimOps int64
	// TraceCaptures counts distinct execution traces materialized, whether
	// piggybacked on a profiling run or captured by a dedicated recording
	// interpretation. TraceHits counts trace requests served from the cache
	// instead.
	TraceCaptures, TraceHits int64
	// TraceEvents and TraceBytes total the logical events and encoded bytes
	// of all captured traces.
	TraceEvents, TraceBytes int64
	// ReplayCells and InterpCells split Measures by simulation backend.
	ReplayCells, InterpCells int64
	// BCodeCompiled counts decision trees lowered to bytecode across every
	// preparation (bytecode backend only); BCodeInstrs their total
	// instruction words; BCodeCacheHits the tree executions' compiled-program
	// lookups served from a prepared program's shared cache.
	BCodeCompiled, BCodeInstrs, BCodeCacheHits int64
	// NativeSteps, NativeFused, and NativeWindows describe the native tier's
	// compiled closure chains (native backend only): total chain steps after
	// fusion, superinstruction heads among them, and how many of those heads
	// are 3- or 4-wide window fusions. TierUps counts trees adaptive tiering
	// promoted from the bytecode rung to the native tier (Runner.TierUp).
	NativeSteps, NativeFused, NativeWindows, TierUps int64
	// CellFailures counts distinct cells that failed after exhausting their
	// degradation ladder; CellPanics, FuelExhausted, and DeadlineExceeded
	// split those failures by class (the remainder is corrupt-trace,
	// missing-schedule, and unclassified failures).
	CellFailures, CellPanics, FuelExhausted, DeadlineExceeded int64
	// NCodeFallbacks counts native-engine cell failures retried on the
	// bytecode engine; BCodeFallbacks counts bytecode-engine cell failures
	// retried on the reference tree walker; TraceRecaptures counts corrupt
	// traces replaced by a fresh per-cell capture; InterpFallbacks counts
	// replay-backend cells that fell all the way back to interpreting
	// measurement. All four count rungs taken, whether or not the rung then
	// succeeded.
	NCodeFallbacks, BCodeFallbacks, TraceRecaptures, InterpFallbacks int64
	// FaultsInjected counts cells the runner's fault-injection plan armed.
	// Zero unless the runner was built with a non-empty Inject plan.
	FaultsInjected int64
	// StorePreps, StoreMeasures, and StoreTraces count cells served whole
	// from the persistent artifact store (Runner.Store) instead of being
	// computed: prepare summaries, priced measurement cells, and captured
	// traces respectively. A fully warm run has Prepares == Measures ==
	// TraceCaptures == 0 with all the work accounted here.
	StorePreps, StoreMeasures, StoreTraces int64
}

// Stats returns a snapshot of the runner's work counters. Safe to call
// concurrently with running experiments.
func (r *Runner) Stats() Stats {
	// Load captures before requests: requests are incremented before their
	// capture runs, so this order keeps TraceHits non-negative even when
	// sampled mid-warm.
	captures := r.nTraceCaptures.Load()
	reqs := r.nTraceReqs.Load()
	return Stats{
		Prepares:         r.nPrepares.Load(),
		Measures:         r.nMeasures.Load(),
		SimOps:           r.nSimOps.Load(),
		TraceCaptures:    captures,
		TraceHits:        reqs - captures,
		TraceEvents:      r.nTraceEvents.Load(),
		TraceBytes:       r.nTraceBytes.Load(),
		ReplayCells:      r.nReplayCells.Load(),
		InterpCells:      r.nInterpCells.Load(),
		BCodeCompiled:    r.bcodeCtrs.Compiled.Load(),
		BCodeInstrs:      r.bcodeCtrs.Instrs.Load(),
		BCodeCacheHits:   r.bcodeCtrs.Hits.Load(),
		NativeSteps:      r.bcodeCtrs.Steps.Load(),
		NativeFused:      r.bcodeCtrs.Fused.Load(),
		NativeWindows:    r.bcodeCtrs.Windows.Load(),
		TierUps:          r.bcodeCtrs.TierUps.Load(),
		CellFailures:     r.nCellFails.Load(),
		CellPanics:       r.nPanics.Load(),
		FuelExhausted:    r.nFuel.Load(),
		DeadlineExceeded: r.nDeadline.Load(),
		NCodeFallbacks:   r.nNCodeFallback.Load(),
		BCodeFallbacks:   r.nBCodeFallback.Load(),
		TraceRecaptures:  r.nRecapture.Load(),
		InterpFallbacks:  r.nInterpFallback.Load(),
		FaultsInjected:   r.nInjected.Load(),
		StorePreps:       r.nStorePreps.Load(),
		StoreMeasures:    r.nStoreMeasures.Load(),
		StoreTraces:      r.nStoreTraces.Load(),
	}
}

// par returns the effective worker-pool width.
func (r *Runner) par() int {
	if r.Par > 0 {
		return r.Par
	}
	return runtime.GOMAXPROCS(0)
}

// warmTask selects what a warm cell computes.
type warmTask int

const (
	taskPrepare warmTask = iota // full preparation pipeline
	taskMeasure                 // timed measurement (implies preparation)
	taskSummary                 // prepare summary (store-served when warm)
)

// warmCell names one evaluation cell to warm: a (benchmark, pipeline,
// memory-latency) triple plus the task to run on it.
type warmCell struct {
	bench  *bench.Benchmark
	kind   disamb.Kind
	memLat int
	task   warmTask
}

// run executes the cell, populating the runner's caches. Errors are
// deliberately ignored: the caller's sequential assembly loop re-requests
// every cell, hits the cache, and surfaces the first error in deterministic
// iteration order — so parallel and sequential runs fail identically.
func (c warmCell) run(r *Runner) {
	switch c.task {
	case taskMeasure:
		_, _ = r.Measure(c.bench, c.kind, c.memLat)
	case taskSummary:
		_, _ = r.Summary(c.bench, c.kind, c.memLat)
	default:
		_, _ = r.Prepared(c.bench, c.kind, c.memLat)
	}
}

// cost estimates the cell's relative wall time for shard balancing. The
// absolute scale is meaningless; only ratios matter. Timed measurement
// dominates preparation by more than an order of magnitude (one cell prices
// 9–18 machine models), longer sources interpret proportionally longer, and
// latency-sensitive pipelines cannot share their cell across latencies.
func (c warmCell) cost() int64 {
	cost := int64(len(c.bench.Source)) + 1
	if c.kind.LatencySensitive() {
		cost *= 2
	}
	if c.task == taskMeasure {
		cost *= 20
	}
	return cost
}

// warm fans the given cells out across the work-stealing pool and waits for
// all of them; see warmAsync.
func (r *Runner) warm(cells []warmCell) { r.warmAsync(cells)() }

// warmAsync starts warming the given cells on the work-stealing pool and
// returns a wait function that blocks until every cell has been run. With an
// effective pool width of one it is a no-op (the caller's assembly loop does
// the work itself; warming would just push every cell through the cache path
// twice).
//
// Callers may begin consuming cells before wait returns: the singleflight
// layer under Prepared/Measure/Summary coalesces the consumer onto the
// warming computation, so rows stream out as their cells complete.
func (r *Runner) warmAsync(cells []warmCell) (wait func()) {
	workers := r.par()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		return func() {}
	}
	costs := make([]int64, len(cells))
	for i, c := range cells {
		costs[i] = c.cost()
	}
	ctx := r.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		runStealing(ctx, workers, costs, func(i int) { cells[i].run(r) })
	}()
	return func() { <-done }
}

// stealDeque is one worker's task queue: indices into the shared task slice,
// highest estimated cost first. The owner pops from the front (finishing big
// tasks early bounds the makespan); thieves split off the back half.
type stealDeque struct {
	mu    sync.Mutex
	tasks []int
}

// pop removes and returns the front task.
func (d *stealDeque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// stealHalf removes and returns the back half (at least one task) of the
// deque, or nil if it is empty.
func (d *stealDeque) stealHalf() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	keep := n / 2
	stolen := append([]int(nil), d.tasks[keep:]...)
	d.tasks = d.tasks[:keep]
	return stolen
}

// push appends tasks to the back of the deque.
func (d *stealDeque) push(tasks []int) {
	d.mu.Lock()
	d.tasks = append(d.tasks, tasks...)
	d.mu.Unlock()
}

// runStealing executes every task index in [0, len(costs)) exactly once
// across a pool of workers, sharding by estimated cost and rebalancing by
// work stealing.
//
// Sharding is greedy LPT: tasks sorted by descending cost, each assigned to
// the least-loaded shard, so the static split is already near-balanced. When
// a worker drains its own deque it steals the back half of the first
// non-empty victim deque (scanning round-robin from its right neighbor) —
// cost estimates are only estimates, and stealing in bulk amortizes the
// synchronization while keeping the victim's biggest tasks local to it.
//
// Termination: tasks move between deques only by stealing and leave the
// system only by being claimed for execution; a claimed task always
// completes (tasks that block in the singleflight layer wait on a
// computation whose owner runs it inline). A worker that finds every deque
// empty therefore exits; tasks a thief holds mid-transfer are invisible to
// that scan but remain owned by a live worker, so every task still runs.
//
// Cancellation: once a worker observes ctx done it exits, abandoning its
// queued tasks instead of executing them — a cancelled request's cells must
// be skipped, not run and discarded (the engines would fail them with typed
// deadline errors anyway, but only after burning a full interpretation
// each). In-flight tasks finish; no task starts after its worker observes
// the cancellation. See TestStealingCancelSkipsQueued.
func runStealing(ctx context.Context, workers int, costs []int64, run func(task int)) {
	n := len(costs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			run(i)
		}
		return
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })
	deques := make([]stealDeque, workers)
	load := make([]int64, workers)
	for _, t := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		deques[w].tasks = append(deques[w].tasks, t)
		load[w] += costs[t]
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				t, ok := deques[self].pop()
				if !ok {
					stolen := []int(nil)
					for i := 1; i < workers; i++ {
						if stolen = deques[(self+i)%workers].stealHalf(); stolen != nil {
							break
						}
					}
					if stolen == nil {
						return
					}
					deques[self].push(stolen)
					continue
				}
				run(t)
			}
		}(w)
	}
	wg.Wait()
}
