package exper

import (
	"runtime"
	"sync"

	"specdis/internal/bench"
	"specdis/internal/disamb"
)

// group is a singleflight-style memoizing call group: the first Do for a key
// runs fn; concurrent Do calls for the same key wait for that one in-flight
// computation; later calls return the cached result (or error) immediately.
// The zero value is ready to use.
type group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*groupCall[V]
}

type groupCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the value for key, computing it with fn exactly once across all
// concurrent and future callers.
func (g *group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[K]*groupCall[V]{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &groupCall[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

// Stats are cumulative counters of the work a Runner has actually performed
// (deduplicated cells, not requests). Every counter is maintained with
// atomics and Stats may be called at any time — including from other
// goroutines while the worker pool is still warming cells; see
// TestStatsWhileWarming. The snapshot is monotonic per counter but not a
// single atomic cut across counters.
type Stats struct {
	// Prepares counts distinct compile+transform pipeline runs.
	Prepares int64
	// Measures counts distinct timed measurement cells (one cell prices all
	// of its machine models at once). ReplayCells + InterpCells == Measures
	// once the runner is idle.
	Measures int64
	// SimOps counts dynamic operations priced across all measurement cells
	// — operations interpreted (interp backend) or replayed from a trace
	// (replay backend). The two backends report identical totals.
	SimOps int64
	// TraceCaptures counts distinct execution traces materialized, whether
	// piggybacked on a profiling run or captured by a dedicated recording
	// interpretation. TraceHits counts trace requests served from the cache
	// instead.
	TraceCaptures, TraceHits int64
	// TraceEvents and TraceBytes total the logical events and encoded bytes
	// of all captured traces.
	TraceEvents, TraceBytes int64
	// ReplayCells and InterpCells split Measures by simulation backend.
	ReplayCells, InterpCells int64
	// BCodeCompiled counts decision trees lowered to bytecode across every
	// preparation (bytecode backend only); BCodeInstrs their total
	// instruction words; BCodeCacheHits the tree executions' compiled-program
	// lookups served from a prepared program's shared cache.
	BCodeCompiled, BCodeInstrs, BCodeCacheHits int64
	// CellFailures counts distinct cells that failed after exhausting their
	// degradation ladder; CellPanics, FuelExhausted, and DeadlineExceeded
	// split those failures by class (the remainder is corrupt-trace,
	// missing-schedule, and unclassified failures).
	CellFailures, CellPanics, FuelExhausted, DeadlineExceeded int64
	// NCodeFallbacks counts native-engine cell failures retried on the
	// bytecode engine; BCodeFallbacks counts bytecode-engine cell failures
	// retried on the reference tree walker; TraceRecaptures counts corrupt
	// traces replaced by a fresh per-cell capture; InterpFallbacks counts
	// replay-backend cells that fell all the way back to interpreting
	// measurement. All four count rungs taken, whether or not the rung then
	// succeeded.
	NCodeFallbacks, BCodeFallbacks, TraceRecaptures, InterpFallbacks int64
	// FaultsInjected counts cells the runner's fault-injection plan armed.
	// Zero unless the runner was built with a non-empty Inject plan.
	FaultsInjected int64
}

// Stats returns a snapshot of the runner's work counters. Safe to call
// concurrently with running experiments.
func (r *Runner) Stats() Stats {
	// Load captures before requests: requests are incremented before their
	// capture runs, so this order keeps TraceHits non-negative even when
	// sampled mid-warm.
	captures := r.nTraceCaptures.Load()
	reqs := r.nTraceReqs.Load()
	return Stats{
		Prepares:         r.nPrepares.Load(),
		Measures:         r.nMeasures.Load(),
		SimOps:           r.nSimOps.Load(),
		TraceCaptures:    captures,
		TraceHits:        reqs - captures,
		TraceEvents:      r.nTraceEvents.Load(),
		TraceBytes:       r.nTraceBytes.Load(),
		ReplayCells:      r.nReplayCells.Load(),
		InterpCells:      r.nInterpCells.Load(),
		BCodeCompiled:    r.bcodeCtrs.Compiled.Load(),
		BCodeInstrs:      r.bcodeCtrs.Instrs.Load(),
		BCodeCacheHits:   r.bcodeCtrs.Hits.Load(),
		CellFailures:     r.nCellFails.Load(),
		CellPanics:       r.nPanics.Load(),
		FuelExhausted:    r.nFuel.Load(),
		DeadlineExceeded: r.nDeadline.Load(),
		NCodeFallbacks:   r.nNCodeFallback.Load(),
		BCodeFallbacks:   r.nBCodeFallback.Load(),
		TraceRecaptures:  r.nRecapture.Load(),
		InterpFallbacks:  r.nInterpFallback.Load(),
		FaultsInjected:   r.nInjected.Load(),
	}
}

// par returns the effective worker-pool width.
func (r *Runner) par() int {
	if r.Par > 0 {
		return r.Par
	}
	return runtime.GOMAXPROCS(0)
}

// warmCell names one evaluation cell to warm: a (benchmark, pipeline,
// memory-latency) triple, either prepare-only or fully measured.
type warmCell struct {
	bench   *bench.Benchmark
	kind    disamb.Kind
	memLat  int
	measure bool
}

// warm fans the given cells out across a bounded worker pool, populating the
// prepare/measure caches. Workers pull cells from a channel, so a worker
// blocked in the singleflight layer (waiting on a computation another worker
// owns) never deadlocks the pool: cell dependencies form a DAG (measure →
// prepare) and every computation runs inline in the worker that claimed it.
//
// Errors are deliberately ignored here: the caller's sequential assembly
// loop re-requests every cell, hits the cache, and surfaces the first error
// in deterministic iteration order — so parallel and sequential runs fail
// identically too.
func (r *Runner) warm(cells []warmCell) {
	workers := r.par()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		// The assembly loop itself does the work; warming would just push
		// every cell through the cache path twice.
		return
	}
	ch := make(chan warmCell)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for c := range ch {
				if c.measure {
					_, _ = r.Measure(c.bench, c.kind, c.memLat)
				} else {
					_, _ = r.Prepared(c.bench, c.kind, c.memLat)
				}
			}
		}()
	}
	for _, c := range cells {
		ch <- c
	}
	close(ch)
	wg.Wait()
}
