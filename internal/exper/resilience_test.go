package exper_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/exper"
	"specdis/internal/resilience"
	"specdis/internal/sim"
)

// These tests prove every rung of the degradation ladder fires — and that
// every manufactured failure surfaces as a structured CellError instead of
// killing the process — by dealing one precisely-targeted fault per runner
// via FaultPlan.Cells.

// faulted returns a single-benchmark runner with the given faults dealt.
func faulted(cells map[string]resilience.Fault) (*exper.Runner, *bench.Benchmark) {
	b := bench.ByName("moment")
	r := exper.New()
	r.Benchmarks = []*bench.Benchmark{b}
	if cells != nil {
		r.Inject = &resilience.FaultPlan{Cells: cells}
	}
	return r, b
}

// cleanNaive measures moment/NAIVE/m2 on a pristine runner — the baseline
// every recovered cell must match exactly.
func cleanNaive(t *testing.T) *exper.Measurement {
	t.Helper()
	r, b := faulted(nil)
	m, err := r.Measure(b, disamb.Naive, 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInjectedPanicIsIsolated(t *testing.T) {
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultPanic, N: 1000},
	})
	_, err := r.Measure(b, disamb.Naive, 2)
	if !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("err = %v, want recovered injected panic", err)
	}
	var ce *resilience.CellError
	if !errors.As(err, &ce) || ce.Class != resilience.ClassPanic || ce.Cell() != cell {
		t.Fatalf("err = %v, want ClassPanic CellError for %s", err, cell)
	}
	// The panic fires on both backends, so the bounded bcode→tree retry must
	// have been taken — and must have given up rather than looping.
	st := r.Stats()
	if st.CellFailures != 1 || st.CellPanics != 1 || st.BCodeFallbacks != 1 || st.FaultsInjected != 1 {
		t.Fatalf("stats = %+v, want 1 failure, 1 panic, 1 bcode fallback, 1 injection", st)
	}
	// The failed cell must not poison its neighbours.
	if _, err := r.Measure(b, disamb.Spec, 2); err != nil {
		t.Fatalf("sibling SPEC cell failed too: %v", err)
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Cell() != cell {
		t.Fatalf("Failures() = %v, want exactly %s", fails, cell)
	}
}

func TestInjectedFuelFailure(t *testing.T) {
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultFuel, N: 500},
	})
	_, err := r.Measure(b, disamb.Naive, 2)
	if !errors.Is(err, resilience.ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
	st := r.Stats()
	// Fuel exhaustion is deterministic: the ladder must not burn a retry.
	if st.FuelExhausted != 1 || st.BCodeFallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 fuel failure and no bcode fallback", st)
	}
}

func TestFlipTraceRecaptureRung(t *testing.T) {
	want := cleanNaive(t)
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultFlipTrace, N: 7, Times: 1},
	})
	got, err := r.Measure(b, disamb.Naive, 2)
	if err != nil {
		t.Fatalf("recapture rung did not recover the cell: %v", err)
	}
	if *got != *want {
		t.Fatalf("recovered measurement differs from clean run:\ngot  %+v\nwant %+v", got, want)
	}
	st := r.Stats()
	if st.TraceRecaptures != 1 || st.InterpFallbacks != 0 || st.CellFailures != 0 {
		t.Fatalf("stats = %+v, want exactly one recapture and no deeper rung", st)
	}
}

func TestFlipTraceInterpFallbackRung(t *testing.T) {
	want := cleanNaive(t)
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		// Times=2 corrupts the recaptured trace too, pushing the cell all
		// the way down to interpreting measurement.
		cell: {Kind: resilience.FaultFlipTrace, N: 7, Times: 2},
	})
	got, err := r.Measure(b, disamb.Naive, 2)
	if err != nil {
		t.Fatalf("interp fallback rung did not recover the cell: %v", err)
	}
	if *got != *want {
		t.Fatalf("recovered measurement differs from clean run:\ngot  %+v\nwant %+v", got, want)
	}
	st := r.Stats()
	if st.TraceRecaptures != 1 || st.InterpFallbacks != 1 || st.CellFailures != 0 {
		t.Fatalf("stats = %+v, want one recapture then one interp fallback", st)
	}
}

func TestBCodePanicFallbackRung(t *testing.T) {
	want := cleanNaive(t)
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultBCodePanic, N: 1000},
	})
	got, err := r.Measure(b, disamb.Naive, 2)
	if err != nil {
		t.Fatalf("bcode→tree rung did not recover the cell: %v", err)
	}
	if *got != *want {
		t.Fatalf("recovered measurement differs from clean run:\ngot  %+v\nwant %+v", got, want)
	}
	st := r.Stats()
	if st.BCodeFallbacks != 1 || st.CellFailures != 0 {
		t.Fatalf("stats = %+v, want one recovered bcode fallback", st)
	}
}

// TestNativeLadderRecovers proves the extended ladder walks both rungs: a
// compiled-engine panic on a native-backend runner falls native → bytecode
// (still armed, panics again) → tree walker (unarmed, recovers), and the
// recovered measurement is byte-identical to a clean run.
func TestNativeLadderRecovers(t *testing.T) {
	want := cleanNaive(t)
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultBCodePanic, N: 1000},
	})
	r.Exec = sim.ExecNative
	got, err := r.Measure(b, disamb.Naive, 2)
	if err != nil {
		t.Fatalf("native ladder did not recover the cell: %v", err)
	}
	if *got != *want {
		t.Fatalf("recovered measurement differs from clean run:\ngot  %+v\nwant %+v", got, want)
	}
	st := r.Stats()
	if st.NCodeFallbacks != 1 || st.BCodeFallbacks != 1 || st.CellFailures != 0 {
		t.Fatalf("stats = %+v, want one native and one bcode rung, no failure", st)
	}
}

// TestNativePanicExhaustsLadder proves an every-backend panic on a native
// runner takes both rungs and still fails structured — the ladder is bounded.
func TestNativePanicExhaustsLadder(t *testing.T) {
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultPanic, N: 1000},
	})
	r.Exec = sim.ExecNative
	_, err := r.Measure(b, disamb.Naive, 2)
	if !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("err = %v, want recovered injected panic", err)
	}
	st := r.Stats()
	if st.NCodeFallbacks != 1 || st.BCodeFallbacks != 1 || st.CellFailures != 1 || st.CellPanics != 1 {
		t.Fatalf("stats = %+v, want both rungs taken and one structured failure", st)
	}
}

func TestDropScheduleIsTypedFailure(t *testing.T) {
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, b := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultDropSchedule},
	})
	_, err := r.Measure(b, disamb.Naive, 2)
	if !errors.Is(err, resilience.ErrMissingSchedule) {
		t.Fatalf("err = %v, want ErrMissingSchedule", err)
	}
	var ce *resilience.CellError
	if !errors.As(err, &ce) || ce.Class != resilience.ClassMissingSchedule {
		t.Fatalf("err = %v, want ClassMissingSchedule CellError", err)
	}
}

func TestDeadlineFailsCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, b := faulted(nil)
	r.Ctx = ctx
	_, err := r.Measure(b, disamb.Naive, 2)
	if !errors.Is(err, resilience.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if st := r.Stats(); st.DeadlineExceeded != 1 {
		t.Fatalf("stats = %+v, want 1 deadline failure", st)
	}
}

// TestFailedRowsAreMarked proves the experiments record-and-continue: an
// injected failure marks its rows FAIL instead of aborting the grid, and
// the renderer prints the marker.
func TestFailedRowsAreMarked(t *testing.T) {
	cell := resilience.CellName("moment", "NAIVE", 0)
	r, _ := faulted(map[string]resilience.Fault{
		cell: {Kind: resilience.FaultPanic, N: 1000},
	})
	rows, err := r.Figure62()
	if err != nil {
		t.Fatalf("Figure62 aborted on a cell failure: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if row.Fail != "panic" {
			t.Fatalf("row %+v, want Fail=panic (NAIVE baseline is shared across latencies)", row)
		}
	}
	var sb strings.Builder
	exper.RenderFigure62(&sb, rows)
	if !strings.Contains(sb.String(), "FAIL(panic)") {
		t.Fatalf("rendered figure lacks the FAIL marker:\n%s", sb.String())
	}
}

// TestCleanRunHasNoResilienceFootprint pins the byte-identity invariant's
// foundation: without injection, no failure, fallback, or recovery counter
// moves.
func TestCleanRunHasNoResilienceFootprint(t *testing.T) {
	r, b := faulted(nil)
	if _, err := r.Measure(b, disamb.Naive, 2); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.CellFailures != 0 || st.BCodeFallbacks != 0 || st.TraceRecaptures != 0 ||
		st.InterpFallbacks != 0 || st.FaultsInjected != 0 {
		t.Fatalf("clean run moved resilience counters: %+v", st)
	}
	if len(r.Failures()) != 0 {
		t.Fatalf("clean run registered failures: %v", r.Failures())
	}
}
