package exper_test

import (
	"testing"
	"time"

	"specdis/internal/exper"
)

// TestTraceReplayEquivalence pins the trace backend's contract at the
// experiment level: the full rendered report is byte-identical between the
// replay and interpreting backends, sequentially and under a parallel worker
// pool, and the replay backend touches every timed cell without a single
// interpreting measurement.
func TestTraceReplayEquivalence(t *testing.T) {
	interp := exper.New()
	interp.Par = 1
	interp.TraceReplay = false
	want := renderAll(t, interp)

	replaySeq := exper.New()
	replaySeq.Par = 1
	replayPar := exper.New()
	replayPar.Par = 4
	for name, r := range map[string]*exper.Runner{"sequential": replaySeq, "parallel": replayPar} {
		if !r.TraceReplay {
			t.Fatalf("TraceReplay not on by default")
		}
		if got := renderAll(t, r); got != want {
			t.Errorf("%s replay output differs from interpretation:\n--- interp ---\n%s\n--- replay ---\n%s", name, want, got)
		}
	}

	ist := interp.Stats()
	if ist.ReplayCells != 0 || ist.TraceCaptures != 0 || ist.TraceEvents != 0 {
		t.Errorf("interp backend did trace work: %+v", ist)
	}
	if ist.InterpCells != ist.Measures {
		t.Errorf("interp backend: %d interp cells, %d measures", ist.InterpCells, ist.Measures)
	}

	if replaySeq.Stats() != replayPar.Stats() {
		t.Errorf("replay work counters differ: sequential %+v, parallel %+v", replaySeq.Stats(), replayPar.Stats())
	}
	rst := replaySeq.Stats()
	if rst.InterpCells != 0 {
		t.Errorf("replay backend interpreted %d timed cells", rst.InterpCells)
	}
	if rst.ReplayCells != rst.Measures || rst.Measures == 0 {
		t.Errorf("replay backend: %d replay cells, %d measures", rst.ReplayCells, rst.Measures)
	}
	if rst.TraceCaptures == 0 || rst.TraceEvents == 0 || rst.TraceBytes == 0 {
		t.Errorf("no traces captured: %+v", rst)
	}
	if rst.TraceHits < 0 {
		t.Errorf("negative trace cache hits: %+v", rst)
	}
	// Trace-class sharing: strictly fewer captures than trace requests (the
	// arc-only pipelines share one trace per benchmark).
	if rst.TraceHits == 0 {
		t.Errorf("trace cache never hit: %+v", rst)
	}

	// The replayed operation totals must equal the interpreted ones exactly —
	// the invariant the CI benchmark smoke job pins via sim_ops.
	if rst.SimOps != ist.SimOps || rst.Measures != ist.Measures || rst.Prepares != ist.Prepares {
		t.Errorf("work differs across backends: replay %+v, interp %+v", rst, ist)
	}
}

// TestStatsWhileWarming polls Stats from another goroutine while a parallel
// run is warming its cells: every counter must be monotonic across snapshots
// and derived counters must never go inconsistent (TraceHits, in particular,
// must never be negative mid-warm). Run under -race this also checks the
// counters are data-race-free.
func TestStatsWhileWarming(t *testing.T) {
	r := exper.New()
	r.Par = 4
	errc := make(chan error, 1)
	go func() {
		_, err := r.Figure62()
		if err == nil {
			_, err = r.Table63()
		}
		errc <- err
	}()

	var prev exper.Stats
	check := func(s exper.Stats) {
		t.Helper()
		if s.TraceHits < 0 {
			t.Fatalf("negative TraceHits mid-warm: %+v", s)
		}
		for _, c := range [][2]int64{
			{prev.Prepares, s.Prepares},
			{prev.Measures, s.Measures},
			{prev.SimOps, s.SimOps},
			{prev.TraceCaptures, s.TraceCaptures},
			{prev.TraceEvents, s.TraceEvents},
			{prev.TraceBytes, s.TraceBytes},
			{prev.ReplayCells, s.ReplayCells},
			{prev.InterpCells, s.InterpCells},
		} {
			if c[1] < c[0] {
				t.Fatalf("counter went backwards: %+v then %+v", prev, s)
			}
		}
		prev = s
	}
	for {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
			s := r.Stats()
			check(s)
			if s.Measures == 0 || s.ReplayCells != s.Measures {
				t.Fatalf("final stats inconsistent: %+v", s)
			}
			return
		default:
			check(r.Stats())
			time.Sleep(100 * time.Microsecond)
		}
	}
}
