package exper

// Persistent warm-start layer: when Runner.Store is set, every expensive
// cell artifact — prepare summaries, captured traces, priced measurement
// cells, and (through the compiled-code caches' backings) bytecode programs
// and native-tier metadata — is served from the content-addressed on-disk
// store when present and persisted when computed. A fully warm run renders
// every report without compiling a single tree or capturing a single trace.
//
// Keys hash everything that determines an artifact's content: the
// benchmark's source text (content addressing — renames don't invalidate),
// the pipeline kind, the cell's canonical memory latency, the SpD transform
// parameters, the fuel budget, and the sweep grid's model layout. Execution
// backend, trace backend, and worker-pool width are deliberately absent:
// reports are byte-identical across all of them (CI-pinned), so one store
// warms every combination.
//
// The store is bypassed entirely — no reads, no writes — under -verify
// (re-checking is the point) and fault injection (injected faults must
// actually fire, and the results they corrupt must never be persisted).

import (
	"encoding/binary"
	"math"

	"specdis/internal/bench"
	"specdis/internal/disamb"
	"specdis/internal/store"
)

// storeOK reports whether artifact reads and writes are enabled.
func (r *Runner) storeOK() bool {
	return r.Store != nil && !r.Verify && r.Inject == nil
}

// artifactKey derives the store key of one cell artifact. cellLat is the
// cell's canonical latency (0 for the shared latency-insensitive cell);
// lats lists the latencies a measurement cell prices (nil otherwise).
func (r *Runner) artifactKey(kind store.Kind, b *bench.Benchmark, dk disamb.Kind, cellLat int, lats []int) store.Key {
	cfg := make([]byte, 0, 96)
	cfg = binary.AppendVarint(cfg, int64(cellLat))
	cfg = binary.AppendVarint(cfg, int64(r.Fuel))
	cfg = binary.AppendUvarint(cfg, math.Float64bits(r.Params.MaxExpansion))
	cfg = binary.AppendUvarint(cfg, math.Float64bits(r.Params.MinGain))
	cfg = binary.AppendUvarint(cfg, math.Float64bits(r.Params.AssumedAliasProb))
	cfg = binary.AppendUvarint(cfg, math.Float64bits(r.Params.MaxAliasProb))
	if r.Params.Forwarding {
		cfg = append(cfg, 1)
	} else {
		cfg = append(cfg, 0)
	}
	cfg = binary.AppendVarint(cfg, int64(r.Params.MaxIterationsPerTree))
	cfg = binary.AppendVarint(cfg, MaxWidth)
	cfg = binary.AppendUvarint(cfg, uint64(len(lats)))
	for _, lat := range lats {
		cfg = binary.AppendVarint(cfg, int64(lat))
	}
	return store.NewKey(kind, []byte(b.Source), []byte(dk.String()), cfg)
}

// Summary returns (computing and caching) the report-visible residue of one
// prepare cell: the SpD application counts and the before/after operation
// counts that Table 6-3 and Figure 6-4 render. Served from the persistent
// store when warm — the preparation pipeline (compile, transform, profile)
// never runs; built from a full preparation and persisted otherwise.
func (r *Runner) Summary(b *bench.Benchmark, kind disamb.Kind, memLat int) (*store.PrepSummary, error) {
	key := prepKey{b.Name, kind, memLat}
	if !kind.LatencySensitive() {
		key.memLat = 0
	}
	return r.sums.Do(key, func() (*store.PrepSummary, error) {
		var skey store.Key
		if r.storeOK() {
			skey = r.artifactKey(store.KindPrep, b, kind, key.memLat, nil)
			if s, ok := store.GetPrep(r.Store, skey); ok {
				r.nStorePreps.Add(1)
				return s, nil
			}
		}
		p, err := r.Prepared(b, kind, memLat)
		if err != nil {
			return nil, err
		}
		s := &store.PrepSummary{
			BaseOps:  p.BaseOps,
			AfterOps: p.Prog.OpCount(),
			Grafts:   p.Grafts,
		}
		if p.SpD != nil {
			s.RAW, s.WAR, s.WAW = p.SpD.RAW, p.SpD.WAR, p.SpD.WAW
		}
		if r.storeOK() {
			store.PutPrep(r.Store, skey, s)
		}
		return s, nil
	})
}

// cellToArtifact flattens a priced measurement cell into its persistable
// form: one row of MaxWidth+1 cycle counts (infinite machine first, then
// widths 1..MaxWidth) per priced latency.
func cellToArtifact(cell *measCell, lats []int) *store.MeasCell {
	mc := &store.MeasCell{
		Lats:  append([]int(nil), lats...),
		Times: make([][]int64, len(cell.byLat)),
	}
	for li, m := range cell.byLat {
		row := make([]int64, 0, MaxWidth+1)
		row = append(row, m.Inf)
		row = append(row, m.ByWidth[:]...)
		mc.Times[li] = row
		mc.Ops = m.Ops
	}
	return mc
}

// cellFromArtifact rebuilds a measurement cell from its persisted form, or
// returns nil when the artifact's latency layout does not match the request
// (a stale or foreign artifact — treated as a miss, never served).
func cellFromArtifact(mc *store.MeasCell, lats []int) *measCell {
	if len(mc.Lats) != len(lats) || len(mc.Times) != len(lats) {
		return nil
	}
	for i, lat := range lats {
		if mc.Lats[i] != lat || len(mc.Times[i]) != MaxWidth+1 {
			return nil
		}
	}
	cell := &measCell{byLat: make([]*Measurement, len(lats))}
	for li, row := range mc.Times {
		m := &Measurement{Inf: row[0], Ops: mc.Ops}
		copy(m.ByWidth[:], row[1:])
		cell.byLat[li] = m
	}
	return cell
}

// StoreStats returns the persistent store's counters (zero when no store is
// attached).
func (r *Runner) StoreStats() store.Stats {
	if r.Store == nil {
		return store.Stats{}
	}
	return r.Store.Stats()
}
