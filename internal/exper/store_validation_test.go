package exper_test

import (
	"testing"

	"specdis/internal/exper"
	"specdis/internal/store"
)

// invertCommitMask decodes a persisted bytecode artifact, flips the guard
// polarity of its first guarded instruction, and re-encodes it. The store's
// CRC footer is resealed by TamperArtifacts, so only semantic validation —
// the translation validator run at load time — can notice. Artifacts with
// no guarded instruction are left untouched (nil).
func invertCommitMask(payload []byte) []byte {
	p, err := store.DecodeBCode(payload)
	if err != nil {
		return nil
	}
	for i := range p.Code {
		if p.Code[i].Guard >= 0 {
			p.Code[i].GNeg = !p.Code[i].GNeg
			return store.EncodeBCode(p)
		}
	}
	return nil
}

// TestTamperedArtifactsDroppedByValidation is the layer-4 resilience case:
// stored bytecode whose commit mask was inverted *under a valid checksum*
// must be rejected by load-time translation validation, recomputed, and
// repaired — with byte-identical reports throughout. This is the corruption
// class TestCorruptStoreDegradesToRecompute cannot see (there the CRC
// catches the damage before any decode).
func TestTamperedArtifactsDroppedByValidation(t *testing.T) {
	dir := t.TempDir()
	cold := exper.New()
	cold.Store = openStore(t, dir)
	want := renderAll(t, cold)

	s := openStore(t, dir)
	tampered, err := s.TamperArtifacts(store.KindBCode, invertCommitMask)
	if err != nil {
		t.Fatal(err)
	}
	if tampered == 0 {
		t.Fatal("no bytecode artifact carried a guarded instruction to tamper")
	}
	// The warm path is served whole measurement/preparation/trace cells and
	// would never load the tampered bytecode; delete those derived kinds so
	// the next run descends to the compiled-code artifacts.
	for _, k := range []store.Kind{store.KindPrep, store.KindMeas, store.KindTrace} {
		if _, err := s.DeleteKind(k); err != nil {
			t.Fatal(err)
		}
	}

	repair := exper.New()
	repair.Store = openStore(t, dir)
	if got := renderAll(t, repair); got != want {
		t.Fatal("tampered store changed report bytes")
	}
	rs := repair.StoreStats()
	if rs.InvalidDropped == 0 {
		t.Errorf("no tampered artifact failed validation: %+v", rs)
	}
	if rs.CorruptDropped != 0 {
		t.Errorf("resealed artifacts tripped the checksum, not validation: %+v", rs)
	}

	// The recomputing run re-put every artifact: warm and clean again.
	warm := exper.New()
	warm.Store = openStore(t, dir)
	if got := renderAll(t, warm); got != want {
		t.Fatal("post-repair output differs")
	}
	ws := warm.StoreStats()
	if ws.InvalidDropped != 0 || ws.CorruptDropped != 0 {
		t.Errorf("store not repaired: %+v", ws)
	}
	if st := warm.Stats(); st.Prepares != 0 || st.Measures != 0 || st.TraceCaptures != 0 {
		t.Errorf("store not repaired; warm run did cold work: %+v", st)
	}
}
