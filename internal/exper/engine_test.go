package exper

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunStealingRunsEveryTaskOnce drives the scheduler with heavily skewed
// costs — one shard gets the giant tasks, forcing idle workers to steal —
// and requires every task to run exactly once.
func TestRunStealingRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 100} {
			costs := make([]int64, n)
			for i := range costs {
				// A few huge tasks and a long tail of tiny ones: LPT packs
				// the giants onto separate shards, the tail gets stolen.
				if i%17 == 0 {
					costs[i] = 1_000_000
				} else {
					costs[i] = int64(1 + i%5)
				}
			}
			ran := make([]atomic.Int32, n)
			runStealing(context.Background(), workers, costs, func(i int) {
				ran[i].Add(1)
			})
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunStealingStealsUnderSkew pins that stealing actually happens: with
// every task's cost on one shard-dominating scale, at least two workers
// must end up running tasks (the static LPT split plus work stealing spread
// the load), exercised under the race detector.
func TestRunStealingStealsUnderSkew(t *testing.T) {
	const n = 64
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = 1 // uniform: LPT spreads them evenly
	}
	var mu sync.Mutex
	seen := map[int]bool{} // distinct goroutines that ran tasks
	var barrier sync.WaitGroup
	barrier.Add(2)
	first := true
	runStealing(context.Background(), 2, costs, func(i int) {
		mu.Lock()
		if first {
			first = false
			mu.Unlock()
			// Park the first task long enough that its shard's remaining
			// tasks must be stolen by the other worker.
			barrier.Done()
			barrier.Wait()
			mu.Lock()
		}
		seen[i] = true
		if len(seen) == n-1 {
			// Every other task finished while the first was parked.
			barrier.Done()
		}
		mu.Unlock()
	})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("ran %d of %d tasks", len(seen), n)
	}
}

// TestStealingCancelSkipsQueued pins the cancellation contract: once a
// worker observes the context cancelled, it exits without executing its
// queued tasks — a cancelled request's cells are skipped, not run and
// discarded. Both workers are parked inside in-flight tasks when the cancel
// lands, so any further task start would be a task started strictly after
// its worker could observe the cancellation.
func TestStealingCancelSkipsQueued(t *testing.T) {
	const n = 64
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(2)
	var started atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		runStealing(ctx, 2, costs, func(i int) {
			if started.Add(1) <= 2 {
				entered.Done()
			}
			<-release
		})
	}()
	entered.Wait() // both workers are mid-task
	cancel()       // cancellation is observable before any next pop
	close(release)
	<-done
	if got := started.Load(); got != 2 {
		t.Fatalf("%d tasks started; want exactly the 2 in-flight ones (queued tasks must be skipped)", got)
	}

	// The sequential path (one worker) honors a pre-cancelled context too.
	pre, stop := context.WithCancel(context.Background())
	stop()
	ran := 0
	runStealing(pre, 1, costs, func(i int) { ran++ })
	if ran != 0 {
		t.Fatalf("sequential path ran %d tasks under a cancelled context", ran)
	}
}

// BenchmarkRunStealingSkewed drives the scheduler with a pathological cost
// split — one shard's static assignment holds nearly all the simulated work
// — so throughput depends on idle workers stealing the tail. Simulated work
// is a calibrated spin, keeping the benchmark hermetic.
func BenchmarkRunStealingSkewed(b *testing.B) {
	const n = 256
	costs := make([]int64, n)
	for i := range costs {
		if i < 8 {
			costs[i] = 10_000 // giants: LPT pins one per shard
		} else {
			costs[i] = 100 // the stealable tail
		}
	}
	spin := func(units int64) int64 {
		var acc int64
		for j := int64(0); j < units*50; j++ {
			acc += j ^ (acc << 1)
		}
		return acc
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "workers=1", 4: "workers=4", 8: "workers=8"}[workers], func(b *testing.B) {
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				runStealing(context.Background(), workers, costs, func(t int) {
					sink.Add(spin(costs[t]))
				})
			}
		})
	}
}

// TestWarmCellCost sanity-checks the shard-balancing cost model's ordering:
// measurement cells dominate prepares, longer sources cost more.
func TestWarmCellCost(t *testing.T) {
	r := New()
	b := r.Benchmarks[0]
	prep := warmCell{bench: b, memLat: 2, task: taskPrepare}
	meas := warmCell{bench: b, memLat: 2, task: taskMeasure}
	if meas.cost() <= prep.cost() {
		t.Errorf("measure cost %d not above prepare cost %d", meas.cost(), prep.cost())
	}
	long, short := r.Benchmarks[0], r.Benchmarks[0]
	for _, cand := range r.Benchmarks {
		if len(cand.Source) > len(long.Source) {
			long = cand
		}
		if len(cand.Source) < len(short.Source) {
			short = cand
		}
	}
	if len(long.Source) > len(short.Source) {
		lc := warmCell{bench: long, memLat: 2, task: taskMeasure}
		sc := warmCell{bench: short, memLat: 2, task: taskMeasure}
		if lc.cost() <= sc.cost() {
			t.Errorf("longer source cost %d not above shorter %d", lc.cost(), sc.cost())
		}
	}
}
