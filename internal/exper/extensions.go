package exper

import (
	"fmt"
	"io"

	"specdis/internal/compile"
	"specdis/internal/disamb"
	"specdis/internal/graft"
	"specdis/internal/machine"
	"specdis/internal/sim"
	"specdis/internal/spd"
)

// GraftRow is one benchmark's grafting-extension measurement (§7).
type GraftRow struct {
	Program      string
	Grafts       int
	AppsPlain    int
	AppsGrafted  int
	CyclesPlain  int64
	CyclesGrafts int64
}

// SpeedupPct returns the grafted speedup over plain SPEC in percent.
func (r GraftRow) SpeedupPct() float64 {
	if r.CyclesGrafts == 0 {
		return 0
	}
	return 100 * (float64(r.CyclesPlain)/float64(r.CyclesGrafts) - 1)
}

// ExtGrafting measures the §7 grafting extension on the integer benchmarks
// at the given memory latency and width.
func (r *Runner) ExtGrafting(memLat, width int) ([]GraftRow, error) {
	gp := graft.DefaultParams()
	models := []machine.Model{machine.New(width, memLat)}
	var rows []GraftRow
	for _, b := range r.Benchmarks {
		if b.Suite == "NRC" {
			continue // grafting targets the tree-starved integer programs
		}
		plain, err := disamb.Prepare(b.Source, disamb.Spec, memLat, r.Params)
		if err != nil {
			return nil, err
		}
		grafted, err := disamb.PrepareOpts(b.Source, disamb.Options{
			Kind: disamb.Spec, MemLat: memLat, SpD: r.Params,
			Graft: &gp, GraftRounds: 2,
		})
		if err != nil {
			return nil, err
		}
		rp, err := disamb.Measure(plain, models)
		if err != nil {
			return nil, err
		}
		rg, err := disamb.Measure(grafted, models)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GraftRow{
			Program:      b.Name,
			Grafts:       grafted.Grafts,
			AppsPlain:    len(plain.SpD.Apps),
			AppsGrafted:  len(grafted.SpD.Apps),
			CyclesPlain:  rp.Times[0],
			CyclesGrafts: rg.Times[0],
		})
	}
	return rows, nil
}

// CombinedRow compares one-at-a-time SpD against §7 combined speculation.
type CombinedRow struct {
	Program                    string
	PairsOne, OpsOne           int
	PairsCombined, OpsCombined int
}

// ExtCombined measures combined multi-alias speculation on the NRC
// benchmarks.
func (r *Runner) ExtCombined(memLat int) ([]CombinedRow, error) {
	var rows []CombinedRow
	for _, b := range r.Benchmarks {
		if b.Suite != "NRC" {
			continue
		}
		one, err := r.Prepared(b, disamb.Spec, memLat)
		if err != nil {
			return nil, err
		}
		prog, err := compile.Compile(b.Source)
		if err != nil {
			return nil, err
		}
		prof := sim.NewProfile()
		run := &sim.Runner{Prog: prog, SemLat: machine.Infinite(memLat).LatencyFunc(), Prof: prof}
		if _, err := run.Run(); err != nil {
			return nil, err
		}
		comb := spd.TransformCombined(prog, prof, r.Params)
		rows = append(rows, CombinedRow{
			Program:       b.Name,
			PairsOne:      one.SpD.RAW,
			OpsOne:        one.SpD.AddedOps,
			PairsCombined: comb.RAW,
			OpsCombined:   comb.AddedOps,
		})
	}
	return rows, nil
}

// RenderExtensions prints both §7 extension experiments.
func RenderExtensions(w io.Writer, grows []GraftRow, crows []CombinedRow) {
	fmt.Fprintln(w, "Extension (§7): grafting before SpD — integer benchmarks, 5 FU / 6-cycle memory")
	fmt.Fprintf(w, "%-10s %7s %10s %12s %12s %9s\n",
		"Program", "grafts", "SpD apps", "plain cyc", "grafted cyc", "speedup")
	for _, r := range grows {
		fmt.Fprintf(w, "%-10s %7d %4d -> %-4d %12d %12d %8.1f%%\n",
			r.Program, r.Grafts, r.AppsPlain, r.AppsGrafted,
			r.CyclesPlain, r.CyclesGrafts, r.SpeedupPct())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Extension (§7): combined multi-alias speculation — NRC benchmarks")
	fmt.Fprintf(w, "%-10s %26s %26s\n", "Program", "one-at-a-time (pairs,+ops)", "combined (pairs,+ops)")
	for _, r := range crows {
		fmt.Fprintf(w, "%-10s %16d, +%-8d %16d, +%-8d\n",
			r.Program, r.PairsOne, r.OpsOne, r.PairsCombined, r.OpsCombined)
	}
}

// OverheadRow quantifies speculation's dynamic cost for one benchmark: how
// many extra operations the SPEC program executes versus what it commits,
// compared with the NAIVE baseline.
type OverheadRow struct {
	Program       string
	NaiveExecuted int64
	SpecExecuted  int64
	SpecCommitted int64
}

// ExecOverheadPct returns the extra dynamic work SPEC performs over NAIVE.
func (r OverheadRow) ExecOverheadPct() float64 {
	if r.NaiveExecuted == 0 {
		return 0
	}
	return 100 * (float64(r.SpecExecuted)/float64(r.NaiveExecuted) - 1)
}

// WastePct returns the fraction of SPEC's executed operations whose
// write-back was squashed (speculation down the wrong outcome plus ordinary
// guarded-execution waste).
func (r OverheadRow) WastePct() float64 {
	if r.SpecExecuted == 0 {
		return 0
	}
	return 100 * float64(r.SpecExecuted-r.SpecCommitted) / float64(r.SpecExecuted)
}

// DynamicOverhead measures executed-vs-committed dynamic operation counts
// for NAIVE and SPEC at the given memory latency.
func (r *Runner) DynamicOverhead(memLat int) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, b := range r.Benchmarks {
		nv, err := r.Prepared(b, disamb.Naive, memLat)
		if err != nil {
			return nil, err
		}
		sp, err := r.Prepared(b, disamb.Spec, memLat)
		if err != nil {
			return nil, err
		}
		rn, err := disamb.Measure(nv, []machine.Model{machine.Infinite(memLat)})
		if err != nil {
			return nil, err
		}
		rs, err := disamb.Measure(sp, []machine.Model{machine.Infinite(memLat)})
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverheadRow{
			Program:       b.Name,
			NaiveExecuted: rn.Ops,
			SpecExecuted:  rs.Ops,
			SpecCommitted: rs.Committed,
		})
	}
	return rows, nil
}

// RenderOverhead prints the dynamic-overhead table.
func RenderOverhead(w io.Writer, rows []OverheadRow) {
	fmt.Fprintln(w, "Dynamic operation overhead of speculation (SPEC vs NAIVE)")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %9s %8s\n",
		"Program", "NAIVE exec", "SPEC exec", "SPEC commit", "overhead", "waste")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14d %14d %14d %8.1f%% %7.1f%%\n",
			r.Program, r.NaiveExecuted, r.SpecExecuted, r.SpecCommitted,
			r.ExecOverheadPct(), r.WastePct())
	}
}
