module specdis

go 1.22
